// Package report renders experiment results as aligned text tables, ASCII
// plots and CSV files — the offline equivalents of the paper's figures.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through, float64s
// are rendered compactly, everything else via %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, FormatFloat(v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// FormatFloat renders a float compactly: NaN as "-", integers without
// decimals, small values with sensible precision.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// Series is one labelled curve of a plot.
type Series struct {
	Label  string
	Marker byte
	X, Y   []float64
}

// LinePlot renders multiple series on an ASCII grid with axes and a legend.
// Points outside [ymin, ymax] are clipped to the border (the paper clips its
// LBO plots at 2.0 the same way).
type LinePlot struct {
	Title      string
	XLabel     string
	YLabel     string
	Width      int
	Height     int
	YMin, YMax float64 // 0,0 = auto
	Series     []Series
}

// Render draws the plot.
func (p *LinePlot) Render(w io.Writer) {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := p.YMin, p.YMax
	autoY := ymin == 0 && ymax == 0
	if autoY {
		ymin, ymax = math.Inf(1), math.Inf(-1)
	}
	for _, s := range p.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			if autoY {
				ymin = math.Min(ymin, s.Y[i])
				ymax = math.Max(ymax, s.Y[i])
			}
		}
	}
	if math.IsInf(xmin, 1) {
		fmt.Fprintln(w, p.Title+" (no data)")
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, marker byte) {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		yc := math.Min(math.Max(y, ymin), ymax)
		row := int(math.Round((ymax - yc) / (ymax - ymin) * float64(height-1)))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = marker
		}
	}
	for _, s := range p.Series {
		// Interpolate between points so curves read as lines.
		for i := 0; i+1 < len(s.X); i++ {
			const steps = 12
			for k := 0; k <= steps; k++ {
				f := float64(k) / steps
				plot(s.X[i]+(s.X[i+1]-s.X[i])*f, s.Y[i]+(s.Y[i+1]-s.Y[i])*f, s.Marker)
			}
		}
		if len(s.X) == 1 {
			plot(s.X[0], s.Y[0], s.Marker)
		}
	}

	if p.Title != "" {
		fmt.Fprintln(w, p.Title)
	}
	for r, rowBytes := range grid {
		yTick := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(w, "%8.3f |%s\n", yTick, string(rowBytes))
	}
	fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%8s  %-*s%s\n", "", width-8, FormatFloat(xmin), FormatFloat(xmax))
	if p.XLabel != "" {
		fmt.Fprintf(w, "%8s  x: %s", "", p.XLabel)
		if p.YLabel != "" {
			fmt.Fprintf(w, "   y: %s", p.YLabel)
		}
		fmt.Fprintln(w)
	}
	var legend []string
	for _, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Label))
	}
	if len(legend) > 0 {
		fmt.Fprintf(w, "%8s  legend: %s\n", "", strings.Join(legend, "  "))
	}
}

// ScatterPlot renders labelled points (the PCA figures): each point is
// plotted with a letter key, with a legend mapping keys to names.
type ScatterPlot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int
	Height int
	Names  []string
	X, Y   []float64
}

// Render draws the scatter plot.
func (p *ScatterPlot) Render(w io.Writer) {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 22
	}
	if len(p.X) == 0 {
		fmt.Fprintln(w, p.Title+" (no data)")
		return
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for i := range p.X {
		xmin, xmax = math.Min(xmin, p.X[i]), math.Max(xmax, p.X[i])
		ymin, ymax = math.Min(ymin, p.Y[i]), math.Max(ymax, p.Y[i])
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	keys := make([]byte, len(p.Names))
	for i := range p.Names {
		if i < 26 {
			keys[i] = byte('a' + i)
		} else {
			keys[i] = byte('A' + i - 26)
		}
		col := int(math.Round((p.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
		row := int(math.Round((ymax - p.Y[i]) / (ymax - ymin) * float64(height-1)))
		grid[row][col] = keys[i]
	}
	if p.Title != "" {
		fmt.Fprintln(w, p.Title)
	}
	for r := range grid {
		yTick := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(w, "%8.2f |%s\n", yTick, string(grid[r]))
	}
	fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%8s  %-*s%s\n", "", width-8, FormatFloat(xmin), FormatFloat(xmax))
	fmt.Fprintf(w, "%8s  x: %s   y: %s\n", "", p.XLabel, p.YLabel)
	var legend []string
	for i, n := range p.Names {
		legend = append(legend, fmt.Sprintf("%c=%s", keys[i], n))
	}
	sort.Strings(legend)
	fmt.Fprintf(w, "%8s  %s\n", "", strings.Join(legend, " "))
}

// CollectorMarkers maps the paper's collector names to stable plot markers.
var CollectorMarkers = map[string]byte{
	"Serial":     'S',
	"Parallel":   'P',
	"G1":         'G',
	"Shenandoah": 'H',
	"ZGC":        'Z',
	"GenZGC":     'g',
}

// MarkerFor returns the marker for a collector (or '*').
func MarkerFor(name string) byte {
	if m, ok := CollectorMarkers[name]; ok {
		return m
	}
	return '*'
}
