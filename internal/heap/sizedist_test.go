package heap

import (
	"math"
	"testing"
	"testing/quick"

	"chopin/internal/sim"
)

func TestSizeDistributionFitsQuantiles(t *testing.T) {
	// lusearch-like: avg 75, P10 24, median 24, P90 88.
	d := Demographics{AvgObjectBytes: 75, ObjectBytesP10: 24, ObjectBytesMedian: 24, ObjectBytesP90: 88}
	s, err := NewSizeDistribution(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	avg, p10, median, _ := s.MeasuredStats(rng, 200000)
	if math.Abs(avg-75)/75 > 0.35 {
		t.Errorf("measured avg %v, want ~75", avg)
	}
	if p10 != 24 {
		t.Errorf("measured P10 %v, want 24", p10)
	}
	if median != 24 {
		t.Errorf("measured median %v, want 24", median)
	}
}

func TestSizeDistributionLuindexLargeObjects(t *testing.T) {
	// luindex has the suite's largest average (211B) with median 32: an
	// extreme tail. The fit must still put the bulk at the median and the
	// mean in the right decade.
	d := Demographics{AvgObjectBytes: 211, ObjectBytesP10: 24, ObjectBytesMedian: 32, ObjectBytesP90: 88}
	s, err := NewSizeDistribution(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(2)
	avg, _, median, p90 := s.MeasuredStats(rng, 200000)
	if median != 32 {
		t.Errorf("median %v, want 32", median)
	}
	if avg < 60 || avg > 400 {
		t.Errorf("avg %v, want same decade as 211", avg)
	}
	if p90 < median {
		t.Errorf("p90 %v below median %v", p90, median)
	}
}

func TestSizeDistributionAlignment(t *testing.T) {
	d := Demographics{AvgObjectBytes: 64, ObjectBytesP10: 24, ObjectBytesMedian: 32, ObjectBytesP90: 88}
	s, err := NewSizeDistribution(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := s.Sample(rng)
		if v < 16 {
			t.Fatalf("object below header size: %v", v)
		}
		if math.Mod(v, 8) != 0 {
			t.Fatalf("object not 8-byte aligned: %v", v)
		}
	}
}

func TestSizeDistributionErrors(t *testing.T) {
	if _, err := NewSizeDistribution(Demographics{}); err == nil {
		t.Fatal("zero quantiles should error")
	}
	if _, err := NewSizeDistribution(Demographics{
		AvgObjectBytes: 10, ObjectBytesP10: 24, ObjectBytesMedian: 32, ObjectBytesP90: 88,
	}); err == nil {
		t.Fatal("average below P10 should error")
	}
}

func TestObjectsForBytes(t *testing.T) {
	d := Demographics{AvgObjectBytes: 64, ObjectBytesP10: 24, ObjectBytesMedian: 32, ObjectBytesP90: 88}
	s, _ := NewSizeDistribution(d)
	if got := s.ObjectsForBytes(6400); got != 100 {
		t.Fatalf("objects = %v, want 100", got)
	}
}

func TestQuickSizeDistributionSane(t *testing.T) {
	f := func(medRaw, p90Raw, avgRaw uint16, seed uint32) bool {
		median := float64(medRaw%100) + 16
		p90 := median + float64(p90Raw%200)
		avg := median + float64(avgRaw%150)
		d := Demographics{
			AvgObjectBytes: avg, ObjectBytesP10: 16,
			ObjectBytesMedian: median, ObjectBytesP90: p90,
		}
		s, err := NewSizeDistribution(d)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(uint64(seed))
		for i := 0; i < 200; i++ {
			v := s.Sample(rng)
			if v < 16 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
