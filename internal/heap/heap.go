// Package heap models the managed heap: spaces, occupancy, object
// demographics and the reclamation arithmetic shared by all collectors.
//
// The model is deliberately aggregate rather than object-by-object: the
// methodologies under study (LBO, the time-space tradeoff, latency) consume
// bytes, occupancies and survival fractions, not object graphs. A workload
// declares a target live set (which its phase script moves over time) and a
// demographic profile (survival behaviour and object-size distribution); the
// heap tracks how allocation, promotion, death and collection move bytes
// between the young space, old live data and old garbage.
//
// The accounting obeys the generational hypothesis: the fraction of young
// bytes that survive a collection falls as the nursery grows, because objects
// get more time to die. That single mechanism is what gives generational
// collectors their advantage in the simulated time-space tradeoff, exactly as
// it does in real systems.
package heap

import (
	"fmt"
	"math"
)

// Config sizes a heap.
type Config struct {
	// SizeBytes is the -Xmx limit.
	SizeBytes float64
	// Expansion is the footprint multiplier relative to the reference
	// configuration (compressed 32-bit object pointers). Running without
	// compressed oops — which ZGC always does — inflates every object, so
	// the same logical data needs Expansion x the space. Must be >= 1.
	Expansion float64
}

// Demographics is a workload's intrinsic object-population behaviour.
type Demographics struct {
	// YoungSurvival is the fraction of young bytes that survive a young
	// collection when the nursery has RefNursery bytes.
	YoungSurvival float64
	// RefNursery is the nursery size at which YoungSurvival was calibrated.
	RefNursery float64
	// SurvivalDecay is the exponent theta in
	// survival(n) = YoungSurvival * (RefNursery/n)^theta: larger nurseries
	// give objects more time to die.
	SurvivalDecay float64
	// CompactFraction is the fraction of old live bytes a compacting full
	// collection must move.
	CompactFraction float64
	// Object size distribution quantiles, in bytes (nominal stats AOS, AOM,
	// AOL and the average AOA).
	AvgObjectBytes    float64
	ObjectBytesP10    float64
	ObjectBytesMedian float64
	ObjectBytesP90    float64
}

// SurvivalAt returns the expected young survival fraction for a nursery of n
// bytes, clamped to [0.005, 0.95].
func (d Demographics) SurvivalAt(n float64) float64 {
	s := d.YoungSurvival
	if n > 0 && d.RefNursery > 0 && d.SurvivalDecay > 0 {
		s *= math.Pow(d.RefNursery/n, d.SurvivalDecay)
	}
	return math.Min(0.95, math.Max(0.005, s))
}

// Heap is the managed heap state for one simulated JVM.
type Heap struct {
	cfg        Config
	demo       Demographics
	targetLive float64 // workload-declared live set
	oldLive    float64 // live bytes in the old space
	oldDead    float64 // dead bytes in the old space awaiting collection
	young      float64 // bytes allocated since the last young collection
	totalAlloc float64
	peakUsed   float64
	peakLive   float64
}

// New returns a heap with the given configuration and demographics.
func New(cfg Config, demo Demographics) *Heap {
	if cfg.SizeBytes <= 0 {
		panic(fmt.Sprintf("heap: non-positive size %v", cfg.SizeBytes))
	}
	if cfg.Expansion < 1 {
		cfg.Expansion = 1
	}
	return &Heap{cfg: cfg, demo: demo}
}

// Capacity returns the logical byte capacity: the configured size deflated by
// the footprint expansion.
func (h *Heap) Capacity() float64 { return h.cfg.SizeBytes / h.cfg.Expansion }

// Used returns the occupied logical bytes (live + dead + young).
func (h *Heap) Used() float64 { return h.oldLive + h.oldDead + h.young }

// Free returns the unoccupied logical bytes.
func (h *Heap) Free() float64 { return h.Capacity() - h.Used() }

// Young returns the bytes allocated since the last young collection.
func (h *Heap) Young() float64 { return h.young }

// OldLive returns the live bytes resident in the old space.
func (h *Heap) OldLive() float64 { return h.oldLive }

// OldDead returns the garbage bytes awaiting an old collection.
func (h *Heap) OldDead() float64 { return h.oldDead }

// TargetLive returns the workload-declared live set.
func (h *Heap) TargetLive() float64 { return h.targetLive }

// TotalAllocated returns cumulative bytes allocated over the heap's life.
func (h *Heap) TotalAllocated() float64 { return h.totalAlloc }

// PeakUsed returns the high-water mark of Used.
func (h *Heap) PeakUsed() float64 { return h.peakUsed }

// PeakLive returns the high-water mark of the declared live set.
func (h *Heap) PeakLive() float64 { return h.peakLive }

// Demographics returns the demographic profile the heap was built with.
func (h *Heap) Demographics() Demographics { return h.demo }

// SetTargetLive declares the workload's current live set. Growth is realised
// by retaining future allocations; shrinkage is discovered by the next
// collection (dead objects are invisible until traced).
func (h *Heap) SetTargetLive(b float64) {
	if b < 0 {
		b = 0
	}
	h.targetLive = b
	if b > h.peakLive {
		h.peakLive = b
	}
}

// TryAlloc allocates b bytes into the young space if they fit, reporting
// whether the allocation succeeded. On failure the collector must reclaim
// space (or declare OOM).
func (h *Heap) TryAlloc(b float64) bool {
	if b < 0 {
		panic(fmt.Sprintf("heap: negative allocation %v", b))
	}
	if h.Used()+b > h.Capacity() {
		return false
	}
	h.young += b
	h.totalAlloc += b
	if u := h.Used(); u > h.peakUsed {
		h.peakUsed = u
	}
	return true
}

// AllocFast allocates b bytes into the young space without a capacity check.
// It is the collector's bump-allocation fast path: the caller has already
// proved (via its precomputed budget) that the bytes fit, so this is exactly
// TryAlloc's success path.
func (h *Heap) AllocFast(b float64) {
	if b < 0 {
		panic(fmt.Sprintf("heap: negative allocation %v", b))
	}
	h.young += b
	h.totalAlloc += b
	if u := h.Used(); u > h.peakUsed {
		h.peakUsed = u
	}
}

// CollectStats reports the byte flows of one collection, from which a
// collector computes its CPU cost.
type CollectStats struct {
	// ScannedBytes is the live data the collector had to trace.
	ScannedBytes float64
	// CopiedBytes is the data the collector had to move (evacuation,
	// promotion, compaction).
	CopiedBytes float64
	// ReclaimedBytes is the garbage returned to the free space.
	ReclaimedBytes float64
	// PromotedBytes is the young data moved into the old space.
	PromotedBytes float64
	// UsedAfter is the heap occupancy after the collection.
	UsedAfter float64
}

// discoverOldDeath moves any excess of old live data over the declared live
// set into the dead pool; collections discover deaths, they do not cause
// them.
func (h *Heap) discoverOldDeath() {
	if h.oldLive > h.targetLive {
		h.oldDead += h.oldLive - h.targetLive
		h.oldLive = h.targetLive
	}
}

// collectYoungSlice processes the first slice bytes of the young space as a
// young collection: survivors (per the demographic survival curve, or more if
// the workload's live set must grow) are promoted; the rest is reclaimed.
func (h *Heap) collectYoungSlice(slice float64) CollectStats {
	h.discoverOldDeath()
	if slice > h.young {
		slice = h.young
	}
	if slice <= 0 {
		return CollectStats{UsedAfter: h.Used()}
	}
	natural := slice * h.demo.SurvivalAt(slice)
	deficit := math.Max(0, h.targetLive-h.oldLive)
	survivors := math.Max(natural, math.Min(slice, deficit))
	growth := math.Min(survivors, deficit)
	h.oldLive += growth
	h.oldDead += survivors - growth // medium-lived data: promoted, will die old
	reclaimed := slice - survivors
	h.young -= slice
	return CollectStats{
		ScannedBytes:   survivors,
		CopiedBytes:    survivors,
		ReclaimedBytes: reclaimed,
		PromotedBytes:  survivors,
		UsedAfter:      h.Used(),
	}
}

// CollectYoung performs a young (nursery) collection over the whole young
// space.
func (h *Heap) CollectYoung() CollectStats {
	return h.collectYoungSlice(h.young)
}

// CollectFull performs a full collection: the young space is collected, old
// garbage is reclaimed, and the old space is compacted.
func (h *Heap) CollectFull() CollectStats {
	ys := h.collectYoungSlice(h.young)
	h.discoverOldDeath()
	reclaimedOld := h.oldDead
	h.oldDead = 0
	compact := h.oldLive * h.demo.CompactFraction
	return CollectStats{
		ScannedBytes:   h.oldLive + ys.ScannedBytes,
		CopiedBytes:    ys.CopiedBytes + compact,
		ReclaimedBytes: ys.ReclaimedBytes + reclaimedOld,
		PromotedBytes:  ys.PromotedBytes,
		UsedAfter:      h.Used(),
	}
}

// Snapshot marks the start of a concurrent cycle: only garbage existing now
// is reclaimable when the cycle finishes; allocation after the snapshot
// floats to the next cycle ("allocated black").
type Snapshot struct {
	youngAtSnap float64
	oldLive     float64
}

// SnapshotForConcurrent starts a concurrent cycle, returning the snapshot and
// the live bytes the cycle must trace.
func (h *Heap) SnapshotForConcurrent() (Snapshot, float64) {
	h.discoverOldDeath()
	s := Snapshot{youngAtSnap: h.young, oldLive: h.oldLive}
	return s, h.oldLive + h.young*0.5 // young is partly live while in flight
}

// FinishConcurrent completes a concurrent cycle: the snapshotted young slice
// is processed and snapshot-era old garbage reclaimed. Post-snapshot
// allocation survives as floating garbage.
func (h *Heap) FinishConcurrent(s Snapshot) CollectStats {
	slice := math.Min(s.youngAtSnap, h.young)
	ys := h.collectYoungSlice(slice)
	h.discoverOldDeath()
	reclaimedOld := h.oldDead
	h.oldDead = 0
	return CollectStats{
		ScannedBytes:   s.oldLive + ys.ScannedBytes,
		CopiedBytes:    ys.CopiedBytes + h.oldLive*h.demo.CompactFraction*0.5,
		ReclaimedBytes: ys.ReclaimedBytes + reclaimedOld,
		PromotedBytes:  ys.PromotedBytes,
		UsedAfter:      h.Used(),
	}
}
