package heap

import (
	"math"
	"testing"
	"testing/quick"
)

const mb = 1 << 20

func testDemo() Demographics {
	return Demographics{
		YoungSurvival:   0.10,
		RefNursery:      16 * mb,
		SurvivalDecay:   0.4,
		CompactFraction: 0.5,
		AvgObjectBytes:  64, ObjectBytesP10: 24, ObjectBytesMedian: 32, ObjectBytesP90: 88,
	}
}

func newTestHeap(sizeMB float64) *Heap {
	return New(Config{SizeBytes: sizeMB * mb, Expansion: 1}, testDemo())
}

func TestAllocWithinCapacity(t *testing.T) {
	h := newTestHeap(100)
	if !h.TryAlloc(50 * mb) {
		t.Fatal("allocation within capacity failed")
	}
	if got := h.Used(); got != 50*mb {
		t.Fatalf("used = %v, want 50MB", got)
	}
	if got := h.Free(); got != 50*mb {
		t.Fatalf("free = %v, want 50MB", got)
	}
}

func TestAllocBeyondCapacityFails(t *testing.T) {
	h := newTestHeap(100)
	if h.TryAlloc(101 * mb) {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if h.Used() != 0 {
		t.Fatal("failed allocation changed occupancy")
	}
	if !h.TryAlloc(100 * mb) {
		t.Fatal("exact-fit allocation failed")
	}
	if h.TryAlloc(1) {
		t.Fatal("allocation into a full heap succeeded")
	}
}

func TestExpansionShrinksLogicalCapacity(t *testing.T) {
	h := New(Config{SizeBytes: 100 * mb, Expansion: 1.45}, testDemo())
	want := 100 * mb / 1.45
	if got := h.Capacity(); math.Abs(got-want) > 1 {
		t.Fatalf("capacity = %v, want %v", got, want)
	}
}

func TestYoungCollectionReclaimsGarbage(t *testing.T) {
	h := newTestHeap(100)
	h.SetTargetLive(0)
	h.TryAlloc(16 * mb) // exactly the reference nursery: survival = 0.10
	st := h.CollectYoung()
	if math.Abs(st.ReclaimedBytes-0.9*16*mb) > 1 {
		t.Fatalf("reclaimed = %v, want %v", st.ReclaimedBytes, 0.9*16*mb)
	}
	if h.Young() != 0 {
		t.Fatalf("young space not emptied: %v", h.Young())
	}
	// Survivors with no live-set deficit become old garbage (turnover).
	if math.Abs(h.OldDead()-0.1*16*mb) > 1 {
		t.Fatalf("old dead = %v, want %v", h.OldDead(), 0.1*16*mb)
	}
}

func TestLiveSetGrowthRetainsAllocations(t *testing.T) {
	h := newTestHeap(200)
	h.SetTargetLive(40 * mb) // workload builds a 40MB structure
	h.TryAlloc(30 * mb)
	st := h.CollectYoung()
	// Everything must survive: live deficit exceeds the young space.
	if st.ReclaimedBytes != 0 {
		t.Fatalf("reclaimed %v while building live set", st.ReclaimedBytes)
	}
	if got := h.OldLive(); got != 30*mb {
		t.Fatalf("old live = %v, want 30MB", got)
	}
	h.TryAlloc(30 * mb)
	h.CollectYoung()
	// Only 10MB more was needed; the rest follows the survival curve.
	if got := h.OldLive(); math.Abs(got-40*mb) > 1 {
		t.Fatalf("old live = %v, want 40MB", got)
	}
}

func TestLiveSetShrinkDiscoveredByCollection(t *testing.T) {
	h := newTestHeap(200)
	h.SetTargetLive(40 * mb)
	h.TryAlloc(40 * mb)
	h.CollectYoung()
	h.SetTargetLive(10 * mb) // phase ends; 30MB dies
	st := h.CollectFull()
	if got := h.OldLive(); math.Abs(got-10*mb) > 1 {
		t.Fatalf("old live = %v, want 10MB", got)
	}
	if h.OldDead() != 0 {
		t.Fatalf("old dead not reclaimed: %v", h.OldDead())
	}
	if st.ReclaimedBytes < 30*mb-1 {
		t.Fatalf("full collection reclaimed %v, want >= 30MB", st.ReclaimedBytes)
	}
}

func TestGenerationalHypothesisLargerNurserySurvivesLess(t *testing.T) {
	d := testDemo()
	small := d.SurvivalAt(4 * mb)
	ref := d.SurvivalAt(16 * mb)
	large := d.SurvivalAt(64 * mb)
	if !(small > ref && ref > large) {
		t.Fatalf("survival should fall with nursery size: %v, %v, %v", small, ref, large)
	}
	if math.Abs(ref-0.10) > 1e-9 {
		t.Fatalf("reference survival = %v, want 0.10", ref)
	}
}

func TestSurvivalClamped(t *testing.T) {
	d := testDemo()
	if got := d.SurvivalAt(1); got > 0.95 {
		t.Fatalf("survival %v exceeds clamp", got)
	}
	if got := d.SurvivalAt(1e18); got < 0.005 {
		t.Fatalf("survival %v below clamp", got)
	}
}

func TestFullCollectionCostsIncludeCompaction(t *testing.T) {
	h := newTestHeap(200)
	h.SetTargetLive(40 * mb)
	h.TryAlloc(40 * mb)
	h.CollectYoung()
	h.TryAlloc(10 * mb)
	st := h.CollectFull()
	// Compaction moves CompactFraction of old live data.
	wantCompact := 40 * mb * 0.5
	if st.CopiedBytes < wantCompact {
		t.Fatalf("copied = %v, want >= %v from compaction", st.CopiedBytes, wantCompact)
	}
	if st.ScannedBytes < 40*mb {
		t.Fatalf("scanned = %v, want >= old live", st.ScannedBytes)
	}
}

func TestConcurrentCycleFloatingGarbage(t *testing.T) {
	h := newTestHeap(200)
	h.SetTargetLive(0)
	h.TryAlloc(20 * mb)
	snap, traced := h.SnapshotForConcurrent()
	if traced <= 0 {
		t.Fatalf("traced = %v, want > 0", traced)
	}
	// Allocation during the cycle...
	h.TryAlloc(30 * mb)
	st := h.FinishConcurrent(snap)
	// ...must float: only the snapshotted 20MB was collectable.
	if h.Young() != 30*mb {
		t.Fatalf("floating young = %v, want 30MB", h.Young())
	}
	if st.ReclaimedBytes > 20*mb {
		t.Fatalf("reclaimed %v, cannot exceed snapshot young", st.ReclaimedBytes)
	}
}

func TestPeakTracking(t *testing.T) {
	h := newTestHeap(100)
	h.SetTargetLive(30 * mb)
	h.TryAlloc(60 * mb)
	h.CollectFull()
	h.TryAlloc(10 * mb)
	if got := h.PeakUsed(); got != 60*mb {
		t.Fatalf("peak used = %v, want 60MB", got)
	}
	h.SetTargetLive(20 * mb)
	if got := h.PeakLive(); got != 30*mb {
		t.Fatalf("peak live = %v, want 30MB", got)
	}
}

func TestTotalAllocatedAccumulates(t *testing.T) {
	h := newTestHeap(100)
	for i := 0; i < 10; i++ {
		h.TryAlloc(5 * mb)
		h.CollectYoung()
	}
	if got := h.TotalAllocated(); got != 50*mb {
		t.Fatalf("total allocated = %v, want 50MB", got)
	}
}

func TestCollectEmptyHeapIsNoOp(t *testing.T) {
	h := newTestHeap(100)
	st := h.CollectYoung()
	if st.ReclaimedBytes != 0 || st.CopiedBytes != 0 {
		t.Fatalf("empty collection did work: %+v", st)
	}
	st = h.CollectFull()
	if st.ReclaimedBytes != 0 {
		t.Fatalf("empty full collection reclaimed %v", st.ReclaimedBytes)
	}
}

func TestNegativeAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newTestHeap(100).TryAlloc(-1)
}

func TestNonPositiveSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{SizeBytes: 0}, testDemo())
}

// Property: occupancy never exceeds capacity and never goes negative under
// any interleaving of allocations and collections.
func TestQuickOccupancyInvariant(t *testing.T) {
	f := func(ops []uint16, liveRaw uint16) bool {
		h := newTestHeap(64)
		h.SetTargetLive(float64(liveRaw%32) * mb)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				h.TryAlloc(float64(op%2000) * 1024)
			case 2:
				h.CollectYoung()
			case 3:
				h.CollectFull()
			}
			if h.Used() > h.Capacity()+1e-6 || h.Used() < -1e-6 {
				return false
			}
			if h.Young() < -1e-6 || h.OldLive() < -1e-6 || h.OldDead() < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a full collection leaves used == old live <= max(target, 0) +
// anything young that survived, and old live never exceeds peak target.
func TestQuickFullCollectionConverges(t *testing.T) {
	f := func(allocs []uint16, liveRaw uint16) bool {
		h := newTestHeap(64)
		target := float64(liveRaw%40) * mb
		h.SetTargetLive(target)
		for _, a := range allocs {
			if !h.TryAlloc(float64(a % 50000)) {
				h.CollectFull()
			}
		}
		h.CollectFull()
		h.CollectFull() // second full GC: all discovered death reclaimed
		return h.OldDead() == 0 && h.OldLive() <= target+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reclaimed + surviving bytes always equal the bytes collected.
func TestQuickCollectionConservation(t *testing.T) {
	f := func(allocRaw, liveRaw uint16) bool {
		h := newTestHeap(256)
		h.SetTargetLive(float64(liveRaw%64) * mb)
		alloc := float64(allocRaw%128) * mb / 2
		if !h.TryAlloc(alloc) {
			return true
		}
		before := h.Used()
		st := h.CollectYoung()
		return math.Abs((before-st.ReclaimedBytes)-h.Used()) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	h := newTestHeap(100)
	h.SetTargetLive(10 * mb)
	if h.TargetLive() != 10*mb {
		t.Fatalf("TargetLive = %v", h.TargetLive())
	}
	if h.Demographics().AvgObjectBytes != 64 {
		t.Fatalf("Demographics = %+v", h.Demographics())
	}
	h.SetTargetLive(-5)
	if h.TargetLive() != 0 {
		t.Fatal("negative live should clamp to zero")
	}
}
