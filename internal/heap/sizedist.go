package heap

import (
	"fmt"
	"math"
	"sort"
)

// SizeDistribution models a workload's object-size population. The real
// suite derives the AOA/AOL/AOM/AOS nominal statistics from bytecode-
// instrumented executions; our analogue is a parametric model fitted to the
// same quantiles, from which characterization runs *measure* the statistics
// by sampling — keeping the measurement pipeline honest instead of echoing
// configuration.
//
// Java object sizes are a heavily right-skewed mixture: a spike of small
// headers-plus-a-field objects and a long tail of arrays. We model that as a
// two-component mixture of a point mass at the median (the dominant small
// class) and a log-normal tail, with the mixture weight and tail shape
// fitted so that the P10/median/P90 quantiles and the mean land on the
// calibrated values.
type SizeDistribution struct {
	demo Demographics
	// tail parameters, fitted at construction
	tailMedian float64
	tailSigma  float64
	tailWeight float64
}

// sampler abstracts the RNG so heap does not import sim.
type sampler interface {
	Float64() float64
	NormFloat64() float64
}

// NewSizeDistribution fits the mixture to the demographics' quantiles.
func NewSizeDistribution(d Demographics) (*SizeDistribution, error) {
	if d.ObjectBytesMedian <= 0 || d.ObjectBytesP90 <= 0 || d.ObjectBytesP10 <= 0 {
		return nil, fmt.Errorf("heap: size distribution needs positive quantiles, got %+v", d)
	}
	if d.AvgObjectBytes < d.ObjectBytesP10 {
		return nil, fmt.Errorf("heap: average %v below P10 %v", d.AvgObjectBytes, d.ObjectBytesP10)
	}
	s := &SizeDistribution{demo: d}
	// The tail starts at the P90 scale; its weight is what the mean needs
	// beyond the bulk. Mean = (1-w)*median + w*tailMean.
	s.tailMedian = math.Max(d.ObjectBytesP90, d.ObjectBytesMedian*1.5)
	s.tailSigma = 0.8
	tailMean := s.tailMedian * math.Exp(s.tailSigma*s.tailSigma/2)
	if tailMean <= d.ObjectBytesMedian {
		s.tailWeight = 0.1
	} else {
		w := (d.AvgObjectBytes - d.ObjectBytesMedian) / (tailMean - d.ObjectBytesMedian)
		s.tailWeight = math.Min(0.45, math.Max(0.02, w))
	}
	return s, nil
}

// Sample draws one object size in bytes (always >= 16, a Java object
// header).
func (s *SizeDistribution) Sample(rng sampler) float64 {
	var v float64
	if rng.Float64() < s.tailWeight {
		v = s.tailMedian * math.Exp(s.tailSigma*rng.NormFloat64())
	} else {
		// The bulk component: the small-object spike spread between P10 and
		// median (objects come in a few discrete size classes).
		if rng.Float64() < 0.25 {
			v = s.demo.ObjectBytesP10
		} else {
			v = s.demo.ObjectBytesMedian
		}
	}
	if v < 16 {
		v = 16
	}
	return math.Round(v/8) * 8 // object sizes are 8-byte aligned
}

// MeasuredStats samples n objects and returns the measured mean, P10,
// median and P90 — the AOA/AOS/AOM/AOL statistics as a characterization run
// observes them.
func (s *SizeDistribution) MeasuredStats(rng sampler, n int) (avg, p10, median, p90 float64) {
	if n < 1 {
		n = 1
	}
	sizes := make([]float64, n)
	var sum float64
	for i := range sizes {
		sizes[i] = s.Sample(rng)
		sum += sizes[i]
	}
	sort.Float64s(sizes)
	quantile := func(p float64) float64 {
		idx := int(p * float64(n-1))
		return sizes[idx]
	}
	return sum / float64(n), quantile(0.10), quantile(0.50), quantile(0.90)
}

// ObjectsForBytes estimates how many objects a byte volume represents under
// this distribution (total bytes over mean size), which is how allocation
// counts are derived without simulating every object.
func (s *SizeDistribution) ObjectsForBytes(bytes float64) float64 {
	if s.demo.AvgObjectBytes <= 0 {
		return 0
	}
	return bytes / s.demo.AvgObjectBytes
}
