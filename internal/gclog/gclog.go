// Package gclog renders a run's GC telemetry in OpenJDK unified-logging
// style and parses such logs back into telemetry.
//
// The paper's analysis leans on GC logs ("We also confirm this by reviewing
// Shenandoah's GC log", Section 6.3), and downstream users of a suite like
// this expect -Xlog:gc-shaped output they can feed to existing tooling. The
// emitted format follows the JDK's shape:
//
//	[12.345s][info][gc] GC(7) Pause Young (Normal) 31M->12M(128M) 1.234ms cpu=9.876ms
//	[13.456s][info][gc] GC(8) Concurrent Cycle 45M->20M(128M) 210.000ms cpu=801.000ms
//
// and Parse reconstructs the trace events from it, round-tripping the fields
// the methodologies consume.
package gclog

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"chopin/internal/trace"
)

// labels maps event kinds to their JDK-style descriptions.
var labels = map[trace.GCKind]string{
	trace.GCYoung:      "Pause Young (Normal)",
	trace.GCFull:       "Pause Full (Allocation Failure)",
	trace.GCConcurrent: "Concurrent Cycle",
	trace.GCDegenerate: "Pause Degenerated GC (Allocation Failure)",
	trace.GCMixed:      "Concurrent Mark Cycle + Mixed Evacuation",
}

// kinds is the inverse of labels.
var kinds = func() map[string]trace.GCKind {
	m := make(map[string]trace.GCKind, len(labels))
	for k, l := range labels {
		m[l] = k
	}
	return m
}()

const mb = float64(1 << 20)

// Format renders the log's events as unified-logging lines. capacityMB is
// the heap capacity shown in parentheses, as -Xlog:gc prints it.
func Format(l *trace.Log, capacityMB float64) string {
	var b strings.Builder
	for i, e := range l.Events {
		before := (e.UsedAfter + e.Reclaimed) / mb
		after := e.UsedAfter / mb
		fmt.Fprintf(&b, "[%.3fs][info][gc] GC(%d) %s %.0fM->%.0fM(%.0fM) %.3fms cpu=%.3fms\n",
			float64(e.End)/1e9, i, labels[e.Kind], before, after, capacityMB,
			e.PauseNS/1e6, e.CPUNS/1e6)
	}
	if l.StallNS > 0 {
		fmt.Fprintf(&b, "[%.3fs][info][gc] Allocation stall total %.3fms\n",
			lastEventSec(l), l.StallNS/1e6)
	}
	return b.String()
}

func lastEventSec(l *trace.Log) float64 {
	if len(l.Events) == 0 {
		return 0
	}
	return float64(l.Events[len(l.Events)-1].End) / 1e9
}

// linePattern matches the event lines Format emits.
var linePattern = regexp.MustCompile(
	`^\[(\d+\.\d+)s\]\[info\]\[gc\] GC\(\d+\) (.+?) (\d+)M->(\d+)M\((\d+)M\) (\d+\.\d+)ms cpu=(\d+\.\d+)ms$`)

// stallPattern matches the trailing stall summary.
var stallPattern = regexp.MustCompile(
	`^\[\d+\.\d+s\]\[info\]\[gc\] Allocation stall total (\d+\.\d+)ms$`)

// Result is what a tolerant parse recovers from unified-logging text.
type Result struct {
	Log        *trace.Log
	CapacityMB float64
	// Malformed counts lines that claimed to be GC output but could not be
	// decoded — truncated event lines, unknown labels, garbled fields. They
	// are skipped, not fatal: a log cut off by a crash should still yield
	// every event before the tear.
	Malformed int
}

// looksLikeGC reports whether a line that failed the event and stall
// patterns nevertheless claims to carry GC telemetry — the signature a
// truncated or corrupted line retains. Interleaved lines from other
// unified-logging tags return false and are skipped silently.
func looksLikeGC(line string) bool {
	return (strings.Contains(line, "][gc]") && strings.Contains(line, "GC(")) ||
		strings.Contains(line, "Allocation stall")
}

// Parse reconstructs a trace.Log from unified-logging text. Unknown lines
// are skipped (real logs interleave other tags), and malformed GC lines are
// tolerated and counted rather than fatal; use ParseAll to see the count.
func Parse(text string) (*trace.Log, float64, error) {
	r, err := ParseAll(text)
	if err != nil {
		return nil, 0, err
	}
	return r.Log, r.CapacityMB, nil
}

// ParseAll is Parse with the malformed-line count exposed. The only error is
// a scanner failure (a line exceeding the 1MB buffer); everything else
// degrades to skipped lines so a truncated log still parses.
func ParseAll(text string) (Result, error) {
	res := Result{Log: &trace.Log{}}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if m := stallPattern.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				res.Malformed++
				continue
			}
			res.Log.StallNS = v * 1e6
			continue
		}
		m := linePattern.FindStringSubmatch(line)
		if m == nil {
			if looksLikeGC(line) {
				res.Malformed++
			}
			continue // interleaved non-GC line
		}
		kind, ok := kinds[m[2]]
		if !ok {
			res.Malformed++
			continue
		}
		endSec, err1 := strconv.ParseFloat(m[1], 64)
		beforeMB, err2 := strconv.ParseFloat(m[3], 64)
		afterMB, err3 := strconv.ParseFloat(m[4], 64)
		capMB, err4 := strconv.ParseFloat(m[5], 64)
		pauseMS, err5 := strconv.ParseFloat(m[6], 64)
		cpuMS, err6 := strconv.ParseFloat(m[7], 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
			err5 != nil || err6 != nil {
			res.Malformed++
			continue
		}
		res.CapacityMB = capMB
		end := int64(endSec * 1e9)
		ev := trace.GCEvent{
			Kind:      kind,
			Start:     end - int64(pauseMS*1e6),
			End:       end,
			PauseNS:   pauseMS * 1e6,
			CPUNS:     cpuMS * 1e6,
			Reclaimed: (beforeMB - afterMB) * mb,
			UsedAfter: afterMB * mb,
		}
		res.Log.AddEvent(ev)
		if ev.PauseNS > 0 {
			res.Log.AddPause(trace.Pause{Start: ev.Start, End: ev.End})
		}
	}
	if err := sc.Err(); err != nil {
		return Result{}, fmt.Errorf("gclog: %w", err)
	}
	return res, nil
}

// Summarize produces the human top-line a GC log reader looks for first.
func Summarize(l *trace.Log) string {
	return fmt.Sprintf(
		"%d collections (%d young, %d full, %d concurrent, %d mixed, %d degenerate), "+
			"%.1fms total pause (max %.2fms), %.1fms GC cpu, %.1fms allocation stalls",
		len(l.Events),
		l.Count(trace.GCYoung), l.Count(trace.GCFull), l.Count(trace.GCConcurrent),
		l.Count(trace.GCMixed), l.Count(trace.GCDegenerate),
		l.TotalPauseNS()/1e6, l.MaxPauseNS()/1e6, l.TotalGCCPUNS()/1e6, l.StallNS/1e6)
}
