package gclog

import (
	"math"
	"strings"
	"testing"

	"chopin/internal/gc"
	"chopin/internal/trace"
	"chopin/internal/workload"
)

func sampleLog() *trace.Log {
	l := &trace.Log{}
	l.AddEvent(trace.GCEvent{Kind: trace.GCYoung, Start: 100e6, End: 101e6,
		PauseNS: 1e6, CPUNS: 8e6, Reclaimed: 19 * mb, UsedAfter: 12 * mb})
	l.AddEvent(trace.GCEvent{Kind: trace.GCConcurrent, Start: 200e6, End: 410e6,
		PauseNS: 0, CPUNS: 801e6, Reclaimed: 25 * mb, UsedAfter: 20 * mb})
	l.AddEvent(trace.GCEvent{Kind: trace.GCFull, Start: 500e6, End: 512e6,
		PauseNS: 12e6, CPUNS: 48e6, Reclaimed: 30 * mb, UsedAfter: 10 * mb})
	l.AddPause(trace.Pause{Start: 100e6, End: 101e6})
	l.AddPause(trace.Pause{Start: 500e6, End: 512e6})
	l.AddStall(3.5e6)
	return l
}

func TestFormatShape(t *testing.T) {
	out := Format(sampleLog(), 128)
	for _, want := range []string{
		"[info][gc] GC(0) Pause Young (Normal) 31M->12M(128M) 1.000ms cpu=8.000ms",
		"GC(1) Concurrent Cycle 45M->20M(128M)",
		"GC(2) Pause Full (Allocation Failure) 40M->10M(128M) 12.000ms",
		"Allocation stall total 3.500ms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("log missing %q:\n%s", want, out)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	orig := sampleLog()
	text := Format(orig, 128)
	parsed, capMB, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if capMB != 128 {
		t.Fatalf("capacity = %v, want 128", capMB)
	}
	if len(parsed.Events) != len(orig.Events) {
		t.Fatalf("events = %d, want %d", len(parsed.Events), len(orig.Events))
	}
	for i, e := range parsed.Events {
		o := orig.Events[i]
		if e.Kind != o.Kind {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, o.Kind)
		}
		if math.Abs(e.PauseNS-o.PauseNS) > 1e3 {
			t.Errorf("event %d pause = %v, want %v", i, e.PauseNS, o.PauseNS)
		}
		if math.Abs(e.CPUNS-o.CPUNS) > 1e3 {
			t.Errorf("event %d cpu = %v, want %v", i, e.CPUNS, o.CPUNS)
		}
		if math.Abs(e.UsedAfter-o.UsedAfter) > mb {
			t.Errorf("event %d used = %v, want %v", i, e.UsedAfter, o.UsedAfter)
		}
		if math.Abs(e.Reclaimed-o.Reclaimed) > mb {
			t.Errorf("event %d reclaimed = %v, want %v", i, e.Reclaimed, o.Reclaimed)
		}
	}
	if math.Abs(parsed.StallNS-orig.StallNS) > 1e3 {
		t.Errorf("stall = %v, want %v", parsed.StallNS, orig.StallNS)
	}
	// Pauses reconstructed for pausing events only.
	if len(parsed.Pauses) != 2 {
		t.Errorf("pauses = %d, want 2", len(parsed.Pauses))
	}
}

func TestParseSkipsForeignLines(t *testing.T) {
	text := "[0.001s][info][init] bootstrapping\n" +
		"[0.100s][info][gc] GC(0) Pause Young (Normal) 31M->12M(128M) 1.000ms cpu=8.000ms\n" +
		"[0.200s][warning][os] something unrelated\n"
	l, _, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(l.Events))
	}
}

func TestParseCountsUnknownLabel(t *testing.T) {
	// An unrecognized GC description is a malformed line, not a fatal parse:
	// a reader pointed at a foreign JDK's log should lose that event only.
	text := "[0.100s][info][gc] GC(0) Pause Shiny (Experimental) 31M->12M(128M) 1.000ms cpu=8.000ms\n" +
		"[0.200s][info][gc] GC(1) Pause Young (Normal) 31M->12M(128M) 1.000ms cpu=8.000ms\n"
	r, err := ParseAll(text)
	if err != nil {
		t.Fatal(err)
	}
	if r.Malformed != 1 {
		t.Fatalf("malformed = %d, want 1", r.Malformed)
	}
	if len(r.Log.Events) != 1 || r.Log.Events[0].Kind != trace.GCYoung {
		t.Fatalf("surviving events = %+v, want the one young GC", r.Log.Events)
	}
}

// TestCorruptedLogRoundTrip formats a real log, damages it the ways real
// logs get damaged — truncated tail, garbage mid-stream, a torn line — and
// checks the parse recovers every undamaged event with an exact count of the
// damage.
func TestCorruptedLogRoundTrip(t *testing.T) {
	orig := sampleLog()
	text := Format(orig, 128)
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	// sampleLog renders 3 event lines + 1 stall line.
	if len(lines) != 4 {
		t.Fatalf("sample rendered %d lines, want 4", len(lines))
	}

	corrupted := []string{
		lines[0],                    // intact young GC
		lines[1][:len(lines[1])-17], // concurrent cycle torn mid-field
		"[0.300s][info][gc] GC(9) Pause Young (No", // truncated by a crash
		"[0.301s][debug][jit] compiled something",  // interleaved foreign tag: silent skip
		"\x00\x00garbage][gc] GC(",                 // binary garbage that still smells of GC
		lines[2],                                   // intact full GC
		lines[3],                                   // intact stall summary
	}
	r, err := ParseAll(strings.Join(corrupted, "\n") + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if r.Malformed != 3 {
		t.Fatalf("malformed = %d, want 3", r.Malformed)
	}
	if r.CapacityMB != 128 {
		t.Fatalf("capacity = %v, want 128", r.CapacityMB)
	}
	if len(r.Log.Events) != 2 {
		t.Fatalf("events = %d, want the 2 intact ones", len(r.Log.Events))
	}
	if r.Log.Events[0].Kind != trace.GCYoung || r.Log.Events[1].Kind != trace.GCFull {
		t.Fatalf("surviving kinds = %v, %v; want young, full",
			r.Log.Events[0].Kind, r.Log.Events[1].Kind)
	}
	if math.Abs(r.Log.StallNS-orig.StallNS) > 1e3 {
		t.Fatalf("stall = %v, want %v", r.Log.StallNS, orig.StallNS)
	}
	if math.Abs(r.Log.TotalPauseNS()-(orig.Events[0].PauseNS+orig.Events[2].PauseNS)) > 1e3 {
		t.Fatalf("pause total = %v", r.Log.TotalPauseNS())
	}
}

func TestParseTruncatedFinalLine(t *testing.T) {
	// A run killed mid-write leaves a partial last line; everything before it
	// must survive and the tear must be counted, not fatal.
	text := Format(sampleLog(), 128)
	cut := text[:len(text)-10] // tears the trailing stall line mid-number
	r, err := ParseAll(cut)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Log.Events) != 3 {
		t.Fatalf("events = %d, want 3 (tear hit only the stall line)", len(r.Log.Events))
	}
	if r.Malformed != 1 {
		t.Fatalf("malformed = %d, want 1", r.Malformed)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleLog())
	for _, want := range []string{"3 collections", "1 young", "1 full", "1 concurrent",
		"13.0ms total pause", "max 12.00ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q: %s", want, s)
		}
	}
}

func TestRealRunRoundTrips(t *testing.T) {
	// End-to-end: simulate, format, parse; the totals the methodologies use
	// must survive the text round trip.
	res, err := workload.Run(workload.H2o, workload.RunConfig{
		HeapMB: 2 * workload.H2o.MinHeapMB, Collector: gc.G1,
		Iterations: 2, Events: 400, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	text := Format(res.Log, 2*workload.H2o.MinHeapMB)
	parsed, _, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Events) != len(res.Log.Events) {
		t.Fatalf("events = %d, want %d", len(parsed.Events), len(res.Log.Events))
	}
	// Totals within formatting precision (3 decimals of ms per event).
	tol := float64(len(parsed.Events)) * 1e3
	if math.Abs(parsed.TotalGCCPUNS()-res.Log.TotalGCCPUNS()) > tol {
		t.Fatalf("gc cpu drifted: %v vs %v", parsed.TotalGCCPUNS(), res.Log.TotalGCCPUNS())
	}
	if math.Abs(parsed.TotalPauseNS()-res.Log.TotalPauseNS()) > tol {
		t.Fatalf("pause total drifted: %v vs %v", parsed.TotalPauseNS(), res.Log.TotalPauseNS())
	}
}
