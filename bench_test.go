// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md. Each
// bench regenerates its artifact end to end (at reduced event/invocation
// counts so the whole harness stays runnable in minutes) and reports the
// headline numbers as benchmark metrics.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=Figure1 -v
package chopin

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"chopin/internal/figures"
	"chopin/internal/gc"
	"chopin/internal/harness"
	"chopin/internal/latency"
	"chopin/internal/nominal"
	"chopin/internal/workload"
)

// benchSweep is the reduced sweep shape used by the figure benches.
func benchSweep() harness.Options {
	return harness.Options{
		HeapFactors: []float64{1.5, 2, 3, 6},
		Invocations: 1,
		Iterations:  2,
		Events:      200,
		Seed:        42,
	}
}

// BenchmarkFigure1GeomeanLBO regenerates Figure 1: geometric-mean wall and
// task-clock LBO curves over the full 22-benchmark suite for the five
// production collectors.
func BenchmarkFigure1GeomeanLBO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, pts, err := harness.SuiteLBO(nil, benchSweep())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Collector == "Serial" && p.HeapFactor == 6 && p.Complete {
				b.ReportMetric(p.CPU, "serial-cpu-lbo@6x")
			}
			if p.Collector == "ZGC" && p.HeapFactor == 6 && p.Complete {
				b.ReportMetric(p.CPU, "zgc-cpu-lbo@6x")
			}
		}
	}
}

// BenchmarkFigure2MMU regenerates the Figure 2 methodology: minimum mutator
// utilization curves demonstrating why pause counts mislead.
func BenchmarkFigure2MMU(b *testing.B) {
	res, err := workload.Run(workload.Lusearch, workload.RunConfig{
		HeapMB: 2 * workload.Lusearch.MinHeapMB, Collector: gc.Serial,
		Iterations: 2, Events: 1000, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	last := res.Last()
	windows := []float64{1e6, 1e7, 1e8, 1e9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curve := latency.MMUCurve(res.Log.Pauses, last.StartNS, last.EndNS, windows)
		b.ReportMetric(curve[2], "mmu@100ms")
	}
}

// BenchmarkFigure3CassandraLatency regenerates Figure 3: cassandra request
// latency distributions (simple, metered-100ms, metered-full) at 2x and 6x.
func BenchmarkFigure3CassandraLatency(b *testing.B) {
	benchLatency(b, workload.Cassandra)
}

// BenchmarkFigure6H2Latency regenerates Figure 6: h2 query latency
// distributions at 2x and 6x.
func BenchmarkFigure6H2Latency(b *testing.B) {
	benchLatency(b, workload.H2)
}

func benchLatency(b *testing.B, d *workload.Descriptor) {
	b.Helper()
	opt := harness.Options{Events: 2000, Iterations: 2, Seed: 42}
	for i := 0; i < b.N; i++ {
		results, err := harness.Latency(d, []float64{2, 6}, opt)
		if err != nil {
			b.Fatal(err)
		}
		out := figures.LatencyFigure(results)
		if !strings.Contains(out, "p99.9") {
			b.Fatal("latency figure missing percentile columns")
		}
		for _, r := range results {
			if r.Collector == "G1" && r.HeapFactor == 6 && r.Completed {
				b.ReportMetric(r.Simple.Percentile(99.9)/1e6, "g1-p99.9-ms@6x")
			}
		}
	}
}

// BenchmarkFigure4PCA regenerates Figure 4: quick-characterize all 22
// workloads and run PCA over the complete nominal metrics.
func BenchmarkFigure4PCA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table := characterizeSuiteQuick(b)
		_, res, err := table.PCA()
		if err != nil {
			b.Fatal(err)
		}
		top4 := 0.0
		for c := 0; c < 4 && c < len(res.ExplainedVariance); c++ {
			top4 += res.ExplainedVariance[c]
		}
		// Paper: the top four PCs explain a bit over 50% of the variance.
		b.ReportMetric(top4*100, "top4-variance-%")
	}
}

func characterizeSuiteQuick(b *testing.B) *nominal.SuiteTable {
	b.Helper()
	var chars []*nominal.Characterization
	for _, d := range workload.All() {
		c, err := nominal.Characterize(d, nominal.Options{
			Events: 200, Invocations: 2, WarmupIters: 8,
			SkipSizeVariants: true, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		chars = append(chars, c)
	}
	return nominal.BuildSuite(chars)
}

// BenchmarkFigure5LBOCassandraLusearch regenerates Figure 5: per-benchmark
// LBO for cassandra and lusearch, wall and task clock.
func BenchmarkFigure5LBOCassandraLusearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, d := range []*workload.Descriptor{workload.Cassandra, workload.Lusearch} {
			grid, minMB, err := harness.LBOGrid(d, benchSweep())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := figures.LBOFigure(grid, minMB); err != nil {
				b.Fatal(err)
			}
			ovs, _ := grid.Overheads()
			for _, o := range ovs {
				if d == workload.Lusearch && o.Collector == "Shenandoah" &&
					o.HeapFactor == 2 && o.Completed {
					b.ReportMetric(o.Wall, "lusearch-shen-wall-lbo@2x")
				}
			}
		}
	}
}

// BenchmarkTable1Catalogue renders the 48-metric nominal catalogue.
func BenchmarkTable1Catalogue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := figures.Table1()
		if !strings.Contains(out, "ARA") || !strings.Contains(out, "USF") {
			b.Fatal("catalogue incomplete")
		}
	}
}

// BenchmarkTable2MostDeterminant regenerates Table 2: the twelve most
// determinant nominal statistics with per-benchmark ranks and values.
func BenchmarkTable2MostDeterminant(b *testing.B) {
	table := characterizeSuiteQuick(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := figures.Table2(table)
		if !strings.Contains(out, "lusearch") {
			b.Fatal("Table 2 missing benchmarks")
		}
	}
}

// BenchmarkTable3AppendixBenchmark regenerates an appendix-style complete
// nominal-statistics table (Table 3 is avrora).
func BenchmarkTable3AppendixBenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := nominal.Characterize(workload.Avrora, nominal.Options{
			Events: 200, Invocations: 2, SkipSizeVariants: true, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		table := nominal.BuildSuite([]*nominal.Characterization{c})
		out, err := figures.BenchmarkTable(table, "avrora")
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, "GMD") {
			b.Fatal("appendix table incomplete")
		}
	}
}

// BenchmarkAppendixLBOPerBenchmark regenerates one appendix LBO figure
// (Figure 7 is avrora).
func BenchmarkAppendixLBOPerBenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		grid, minMB, err := harness.LBOGrid(workload.Avrora, benchSweep())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := figures.LBOFigure(grid, minMB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendixHeapTimeline regenerates an appendix post-GC heap-size
// figure (Figure 8 style) for h2o.
func BenchmarkAppendixHeapTimeline(b *testing.B) {
	opt := harness.Options{Events: 400, Iterations: 2, Seed: 42}
	for i := 0; i < b.N; i++ {
		samples, err := harness.HeapTimeline(workload.H2o, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(samples) == 0 {
			b.Fatal("no heap samples")
		}
		_ = figures.HeapTimelineFigure("h2o", samples)
	}
}

// BenchmarkAppendixLatencyPerBenchmark regenerates one appendix latency
// figure (kafka).
func BenchmarkAppendixLatencyPerBenchmark(b *testing.B) {
	opt := harness.Options{Events: 1500, Iterations: 2, Seed: 42}
	for i := 0; i < b.N; i++ {
		results, err := harness.Latency(workload.Kafka, []float64{2, 6}, opt)
		if err != nil {
			b.Fatal(err)
		}
		_ = figures.LatencyFigure(results)
		_ = figures.MMUFigure(results)
	}
}

// BenchmarkSection64ArchSensitivity regenerates the Section 6.4 analysis:
// top-down breakdowns and machine-swap sensitivities for the IPC extremes.
func BenchmarkSection64ArchSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"biojava", "jython", "xalan", "h2o"} {
			d, err := workload.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			td := d.Arch.Analyze(Zen4)
			if td.IPC <= 0 {
				b.Fatal("bad IPC")
			}
			_ = d.Arch.TimeFactor(Zen4.WithSlowDRAM())
			_ = d.Arch.TimeFactor(Zen4.WithLLCScale(1.0 / 16))
		}
	}
}

// BenchmarkSection42MinheapSearch regenerates the Recommendation H2
// prerequisite: per-benchmark minimum-heap identification.
func BenchmarkSection42MinheapSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		min, err := harness.MinHeapMB(workload.Fop, harness.Options{Events: 200, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(min, "fop-minheap-MB")
	}
}

// BenchmarkSection43WarmupCurve regenerates the Recommendation P1 warmup
// measurement for the suite's slowest-warming workload.
func BenchmarkSection43WarmupCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.Run(workload.Jython, workload.RunConfig{
			HeapMB: 2 * workload.Jython.MinHeapMB, Collector: gc.G1,
			Iterations: 12, Events: 300, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		first := res.Iterations[0].WallNS
		last := res.Last().WallNS
		if last >= first {
			b.Fatal("no warmup visible")
		}
		b.ReportMetric(first/last, "iter0-over-steady")
	}
}

// --- Ablations (DESIGN.md A1-A4) ---

// BenchmarkAblationSmoothing sweeps the metered-latency smoothing window
// from 1ms to full smoothing (A1): tail latency grows monotonically with
// the window, simple latency is the window->0 limit.
func BenchmarkAblationSmoothing(b *testing.B) {
	res, err := workload.Run(workload.Lusearch, workload.RunConfig{
		HeapMB: 1.5 * workload.Lusearch.MinHeapMB, Collector: gc.Serial,
		Iterations: 2, Events: 2000, Seed: 42, RecordLatency: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	events := make([]latency.Event, len(res.Events))
	for i, e := range res.Events {
		events[i] = latency.Event{Start: e.Start, End: e.End}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prev := 0.0
		for _, w := range []float64{1e6, 1e7, 1e8, 1e9, latency.FullSmoothing} {
			d := latency.NewDistribution(latency.Metered(events, w))
			max := d.Max()
			// The full-smoothing estimator (uniform ramp) differs slightly
			// from the windowed sliding average, so allow 2% slack on the
			// monotonicity check.
			if max < prev*0.98 {
				b.Fatalf("tail fell as smoothing grew: %v -> %v", prev, max)
			}
			prev = max
		}
		b.ReportMetric(prev/1e6, "full-smoothing-max-ms")
	}
}

// BenchmarkAblationLBOBaseline contrasts the distilled LBO baseline with a
// naive fastest-total baseline (A2): the naive baseline hides overhead.
func BenchmarkAblationLBOBaseline(b *testing.B) {
	grid, _, err := harness.LBOGrid(workload.H2o, benchSweep())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distilled, err := grid.BaselineCPU()
		if err != nil {
			b.Fatal(err)
		}
		naive := math.Inf(1)
		for _, m := range grid.Cells {
			if m.Completed && m.CPUNS < naive {
				naive = m.CPUNS
			}
		}
		if naive <= distilled {
			b.Fatal("naive baseline should exceed the distilled one")
		}
		b.ReportMetric(naive/distilled, "hidden-overhead-x")
	}
}

// BenchmarkAblationPacer runs Shenandoah with and without its pacer on the
// suite's heaviest allocator (A3): pacing trades wall clock for fewer
// degenerate collections.
func BenchmarkAblationPacer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(pacer bool) (wall, stall float64) {
			p := gc.Shenandoah.Params(Zen4.Cores)
			p.Pacer = pacer
			res, err := workload.Run(workload.Lusearch, workload.RunConfig{
				HeapMB: 2 * workload.Lusearch.MinHeapMB, Collector: gc.Shenandoah,
				CollectorParams: &p, Iterations: 2, Events: 500, Seed: 42,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Last().WallNS, res.Log.StallNS
		}
		wallOn, stallOn := run(true)
		wallOff, stallOff := run(false)
		if stallOn <= stallOff {
			b.Fatal("pacer produced no allocation stalls")
		}
		b.ReportMetric(wallOn/wallOff, "pacer-wall-ratio")
	}
}

// BenchmarkAblationGenerational contrasts ZGC with the Generational ZGC
// extension on a young-garbage-heavy workload (A4).
func BenchmarkAblationGenerational(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(kind gc.Kind) float64 {
			res, err := workload.Run(workload.H2o, workload.RunConfig{
				HeapMB: 3 * workload.H2o.MinHeapMB, Collector: kind,
				Iterations: 2, Events: 400, Seed: 42,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.GCCPUNS
		}
		zgc := run(gc.ZGC)
		gen := run(gc.GenZGC)
		b.ReportMetric(zgc/gen, "zgc-over-genzgc-gccpu")
	}
}

// BenchmarkFullSuite measures whole-suite parallel execution end to end: a
// reduced representative plan — four benchmarks x three collectors x three
// heap factors of LBO plus latency sweeps for the latency-sensitive pair —
// submitted up front as one batch of job DAGs (min-heap anchors first, grid
// cells as anchors resolve) and collected in deterministic merge order. The
// workers=1 and workers=8 variants bound the scaling headroom: on a
// multi-core host the 8-worker run should finish several times faster,
// while merged results stay byte-identical (the harness golden pins that).
// The workers=NumCPU variant (literal name, so the recorded baseline is
// comparable across hosts) measures the saturated point on whatever the
// host offers. `make bench` records all three, benchjson derives the
// parallel-efficiency ratio (workers=1 ns ÷ workers=8 ns), and `make
// bench-scaling` gates on it — so scaling regressions fail the gate, not
// just per-op times.
func BenchmarkFullSuite(b *testing.B) {
	bs := []*workload.Descriptor{
		workload.Fop, workload.Lusearch, workload.Cassandra, workload.H2,
	}
	variants := []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=8", 8},
		{"workers=NumCPU", runtime.NumCPU()},
	}
	for _, v := range variants {
		workers := v.workers
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := NewEngine(EngineOptions{Workers: workers})
				opt := harness.Options{
					Collectors:  []gc.Kind{gc.Serial, gc.G1, gc.Shenandoah},
					HeapFactors: []float64{1.5, 2, 3},
					Invocations: 2,
					Iterations:  2,
					Events:      300,
					Seed:        42,
					Engine:      eng,
				}
				// Submit the whole plan before collecting anything.
				suite := harness.SubmitSuiteLBO(bs, opt)
				var lats []*harness.PendingLatency
				for _, d := range bs {
					if d.LatencySensitive {
						lats = append(lats, harness.SubmitLatency(d, []float64{2}, opt))
					}
				}
				if _, _, err := suite.Wait(); err != nil {
					b.Fatal(err)
				}
				for _, p := range lats {
					if _, err := p.Wait(); err != nil {
						b.Fatal(err)
					}
				}
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineWarmCache measures the experiment engine's resume path: an
// LBO grid re-aggregated entirely from the content-addressed result cache.
// The timed loop performs zero simulator invocations — it is the cost of a
// resumed (or re-rendered) sweep, dominated by cache reads and aggregation.
func BenchmarkEngineWarmCache(b *testing.B) {
	dir := b.TempDir()
	warm, err := OpenResultCache(dir, CacheReadWrite)
	if err != nil {
		b.Fatal(err)
	}
	seed := NewEngine(EngineOptions{Cache: warm})
	opt := benchSweep()
	opt.Engine = seed
	if _, _, err := MeasureLBO(workload.Fop, opt); err != nil {
		b.Fatal(err)
	}
	seed.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache, err := OpenResultCache(dir, CacheReadWrite)
		if err != nil {
			b.Fatal(err)
		}
		eng := NewEngine(EngineOptions{Cache: cache})
		opt := benchSweep()
		opt.Engine = eng
		if _, _, err := MeasureLBO(workload.Fop, opt); err != nil {
			b.Fatal(err)
		}
		if s := eng.Stats(); s.Executed != 0 {
			b.Fatalf("warm re-run executed %d invocations, want 0", s.Executed)
		}
		eng.Close()
	}
}

// BenchmarkRunInvocation measures the invocation hot path end to end: one
// complete closed-loop run (2 iterations x 1000 events) per collector, with
// -benchmem. The pooled continuation frames and the collector's
// bump-allocation fast path make the per-event path allocation-free, so
// allocs/op here is the constant per-run setup (engine, threads, heap,
// result buffers) independent of event count — TestRunInvocationMarginalAllocs
// locks that property, and `make bench-gate` diffs these numbers against the
// committed BENCH_sim.json baseline.
func BenchmarkRunInvocation(b *testing.B) {
	for _, kind := range gc.AllKinds {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := workload.Run(workload.Spring, workload.RunConfig{
					HeapMB: 2 * workload.Spring.MinHeapMB, Collector: kind,
					Iterations: 2, Events: 1000, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = res
			}
		})
	}
}

// BenchmarkRunInvocationOpenLoop is the open-loop counterpart: scheduled
// arrivals, queueing, and the shared arrival timer callback.
func BenchmarkRunInvocationOpenLoop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := workload.Run(workload.Spring, workload.RunConfig{
			HeapMB: 2 * workload.Spring.MinHeapMB, Collector: gc.G1,
			Iterations: 2, Events: 1000, Seed: 42,
			OpenLoop: true, OpenLoopHeadroom: 1.5,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestRunInvocationMarginalAllocs pins the hot path's allocation discipline:
// growing a run by 2000 events must cost (near) zero additional Go
// allocations, because event frames recycle through the runner's free list
// and the collector's fast path allocates nothing. The small slack covers
// amortized growth of the trace log's event/pause slices.
func TestRunInvocationMarginalAllocs(t *testing.T) {
	run := func(events int) float64 {
		return testing.AllocsPerRun(3, func() {
			_, err := workload.Run(workload.Spring, workload.RunConfig{
				HeapMB: 2 * workload.Spring.MinHeapMB, Collector: gc.G1,
				Iterations: 2, Events: events, Seed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	base := run(500)
	big := run(2500)
	marginal := (big - base) / 2000
	if marginal > 0.5 {
		t.Errorf("marginal cost = %.2f allocs/event (runs: %v -> %v), want ~0 — "+
			"the hot path is allocating per event again", marginal, base, big)
	}
}

// BenchmarkSimulatorThroughput measures the substrate itself: simulated
// events per second of host time for a typical configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.Run(workload.Spring, workload.RunConfig{
			HeapMB: 2 * workload.Spring.MinHeapMB, Collector: gc.G1,
			Iterations: 1, Events: 1000, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkAblationOpenLoopVsMetered validates the paper's metered-latency
// approximation against ground truth (A5): the same workload is run
// open-loop (real scheduled arrivals with queueing — what metered latency
// models) and closed-loop; the metered distribution should track the
// open-loop one far better than simple latency does at the tail.
func BenchmarkAblationOpenLoopVsMetered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(open bool) []latency.Event {
			res, err := workload.Run(workload.Spring, workload.RunConfig{
				HeapMB: 2 * workload.Spring.MinHeapMB, Collector: gc.G1,
				Iterations: 2, Events: 2500, Seed: 42, OpenLoop: open,
				// Drive at ~50% of nominal rate so the open system is below
				// saturation, as a real load test would be (an overloaded
				// open system diverges regardless of GC — queueing theory,
				// not collector behaviour).
				OpenLoopHeadroom: 2.0,
			})
			if err != nil {
				b.Fatal(err)
			}
			evs := make([]latency.Event, len(res.Events))
			for j, e := range res.Events {
				evs[j] = latency.Event{Start: e.Start, End: e.End}
			}
			return evs
		}
		openEvents := run(true)
		closedEvents := run(false)

		truth := latency.NewDistribution(latency.Simple(openEvents)).Percentile(99.9)
		simple := latency.NewDistribution(latency.Simple(closedEvents)).Percentile(99.9)
		metered := latency.NewDistribution(
			latency.Metered(closedEvents, latency.FullSmoothing)).Percentile(99.9)

		simpleErr := math.Abs(simple - truth)
		meteredErr := math.Abs(metered - truth)
		b.ReportMetric(truth/1e6, "openloop-p99.9-ms")
		b.ReportMetric(metered/1e6, "metered-p99.9-ms")
		b.ReportMetric(simple/1e6, "simple-p99.9-ms")
		if meteredErr > simpleErr && metered < simple {
			// Metered should move the closed-loop estimate *toward* the
			// open-loop truth, never away below simple.
			b.Fatalf("metered (%v) strayed further from truth (%v) than simple (%v)",
				metered, truth, simple)
		}
	}
}
