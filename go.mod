module chopin

go 1.22
