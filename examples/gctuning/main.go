// gctuning explores the time-space tradeoff for a service deciding how much
// memory to give each JVM and which collector to run — the paper's
// Recommendations H1/H2 and O1/O2 applied to a capacity-planning question:
//
//	"We run a cassandra-like service. How much memory buys how much CPU,
//	 and which collector should we deploy?"
//
// It measures the lower-bound overhead of every production collector across
// heap sizes and prints the tradeoff frontier plus a recommendation under a
// given memory budget.
package main

import (
	"fmt"
	"log"
	"math"

	"chopin"
)

func main() {
	bench, err := chopin.Lookup("cassandra")
	if err != nil {
		log.Fatal(err)
	}

	opt := chopin.SweepOptions{
		HeapFactors: []float64{1.25, 1.5, 2, 3, 4, 6},
		Invocations: 2,
		Iterations:  2,
		Events:      400,
		Seed:        7,
	}
	fmt.Printf("sweeping %s across %d collectors x %d heap sizes...\n\n",
		bench.Name, len(chopin.Collectors), len(opt.HeapFactors))

	grid, minMB, err := chopin.MeasureLBO(bench, opt)
	if err != nil {
		log.Fatal(err)
	}
	overheads, err := grid.Overheads()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("minimum heap: %.0f MB. CPU overhead (LBO) by configuration:\n\n", minMB)
	fmt.Printf("%-12s", "collector")
	for _, f := range opt.HeapFactors {
		fmt.Printf("  %5.2fx", f)
	}
	fmt.Println()
	for _, c := range chopin.Collectors {
		fmt.Printf("%-12s", c)
		for _, f := range opt.HeapFactors {
			cell := "   OOM"
			for _, o := range overheads {
				if o.Collector == c.String() && o.HeapFactor == f && o.Completed {
					cell = fmt.Sprintf("%6.2f", o.CPU)
				}
			}
			fmt.Printf("  %s", cell)
		}
		fmt.Println()
	}

	// Capacity planning: with a memory budget of 3x the minimum heap, which
	// collector burns the least CPU while keeping wall-clock overhead sane?
	const budget = 3.0
	best, bestCPU := "", math.Inf(1)
	for _, o := range overheads {
		if !o.Completed || o.HeapFactor > budget {
			continue
		}
		if o.CPU < bestCPU && o.Wall < 1.25 {
			best, bestCPU = o.Collector, o.CPU
		}
	}
	fmt.Printf("\nwithin a %.0fx memory budget (%.0f MB) and <25%% wall overhead,\n",
		budget, budget*minMB)
	fmt.Printf("deploy %s: lower-bound CPU overhead %.0f%%\n", best, (bestCPU-1)*100)
	fmt.Println("\n(The frontier is exactly Figure 5 of the paper: every point you")
	fmt.Println(" give up in memory is paid for in CPU, and the newer collectors")
	fmt.Println(" pay more of it on the task clock than the wall clock shows.)")
}
