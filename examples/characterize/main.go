// characterize demonstrates the suite's workload-characterization machinery
// (Section 5 of the paper): it measures nominal statistics for a subset of
// workloads, prints their scores the way DaCapo's -p switch does, and runs
// the PCA diversity analysis over them.
package main

import (
	"fmt"
	"log"

	"chopin"
)

func main() {
	// A deliberately diverse subset: the highest allocator, the most
	// compute-dense, the most memory-bound, a GC-insensitive frame renderer
	// and a kernel-bound message broker.
	names := []string{"lusearch", "biojava", "h2o", "jme", "kafka"}
	var benches []*chopin.Benchmark
	for _, n := range names {
		b, err := chopin.Lookup(n)
		if err != nil {
			log.Fatal(err)
		}
		benches = append(benches, b)
	}

	fmt.Println("characterizing", names, "(a minute or so)...")
	table, err := chopin.CharacterizeSuite(benches, chopin.NominalOptions{
		Events:           300,
		Invocations:      3,
		SkipSizeVariants: true,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Print a few discriminating metrics with suite-relative ranks.
	show := []string{"ARA", "GMD", "GSS", "GCP", "PIN", "PFS", "PKP", "UIP", "ULL"}
	fmt.Printf("\n%-10s", "benchmark")
	for _, m := range show {
		fmt.Printf(" %12s", m)
	}
	fmt.Println()
	for i, b := range table.Benchmarks {
		fmt.Printf("%-10s", b)
		for _, m := range show {
			j := table.MetricIndex(m)
			fmt.Printf(" %8.1f (%d)", table.Values[i][j], table.Ranks[i][j])
		}
		fmt.Println()
	}

	names2, res, err := table.PCA()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPCA over %d complete metrics:\n", len(names2))
	for c := 0; c < 3 && c < len(res.ExplainedVariance); c++ {
		fmt.Printf("  PC%d explains %4.1f%% of the variance\n",
			c+1, res.ExplainedVariance[c]*100)
	}
	fmt.Println("\nprojections (PC1, PC2) — distance means behavioural difference:")
	for i, b := range table.Benchmarks {
		fmt.Printf("  %-10s (%6.2f, %6.2f)\n", b, res.Projected[i][0], res.Projected[i][1])
	}
	fmt.Println("\nWell-spread points are what a benchmark suite wants (Figure 4):")
	fmt.Println("diversity is coverage, and clusters would mean redundant workloads.")
}
