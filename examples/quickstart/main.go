// Quickstart: run one benchmark under two collectors and print what the
// paper says you should always report — both wall clock and task clock
// (Recommendation O2) — plus the GC telemetry behind them.
package main

import (
	"fmt"
	"log"

	"chopin"
)

func main() {
	bench, err := chopin.Lookup("lusearch")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark: %s — %s\n", bench.Name, bench.Description)

	// Heap sizes must be multiples of a measured minimum (Recommendation
	// H2), so measure the minimum first.
	minMB, err := chopin.MinHeapMB(bench, chopin.SweepOptions{Events: 500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured minimum heap: %.0f MB\n\n", minMB)

	for _, collector := range []chopin.Collector{chopin.G1, chopin.ZGC} {
		result, err := chopin.Run(bench, chopin.RunConfig{
			HeapMB:     2 * minMB,
			Collector:  collector,
			Iterations: 5, // iteration 5 is well warmed up for default sizes
			Events:     1000,
			Seed:       42,
		})
		if err != nil {
			log.Fatal(err)
		}
		last := result.Last()
		fmt.Printf("%-10s timed iteration: wall %7.1f ms, task clock %8.1f ms\n",
			collector, last.WallNS/1e6, last.CPUNS/1e6)
		fmt.Printf("%-10s whole run: %d GCs, %.1f ms STW, %.1f ms GC CPU\n\n",
			"", len(result.Log.Events), result.Log.TotalPauseNS()/1e6, result.GCCPUNS/1e6)
	}

	fmt.Println("\nNote how ZGC's task clock exceeds its wall clock by far more than")
	fmt.Println("G1's: concurrent collection hides on idle cores. That is why the")
	fmt.Println("paper insists on reporting both clocks.")
}
