// latencysla answers an SLA question the way the paper says it must be
// answered (Recommendations L1/L2): with user-experienced latency
// distributions, not GC pause statistics.
//
//	"Our spring service has a 100ms p99.9 SLA. Which collectors meet it at
//	 2x heap, and what would pause times alone have told us?"
//
// It runs the latency experiment, compares simple and metered latency
// against the SLA, and shows how badly max-pause numbers mislead.
package main

import (
	"fmt"
	"log"

	"chopin"
)

func main() {
	bench, err := chopin.Lookup("spring")
	if err != nil {
		log.Fatal(err)
	}

	results, err := chopin.MeasureLatency(bench, []float64{2}, chopin.SweepOptions{
		Events:     3000,
		Iterations: 2,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}

	const slaMS = 100.0
	fmt.Printf("%s, 2.0x heap, %d requests; SLA: p99.9 <= %.0fms\n\n",
		bench.Name, results[0].Simple.N(), slaMS)
	fmt.Printf("%-12s %12s %12s %14s %12s %6s\n",
		"collector", "max pause", "p99.9 simple", "p99.9 metered", "p50 simple", "SLA?")
	for _, r := range results {
		if !r.Completed {
			fmt.Printf("%-12s OOM\n", r.Collector)
			continue
		}
		var maxPause float64
		for _, p := range r.Pauses {
			if d := p.Duration(); d > maxPause {
				maxPause = d
			}
		}
		metered := r.MeteredFull.Percentile(99.9) / 1e6
		verdict := "PASS"
		if metered > slaMS {
			verdict = "FAIL"
		}
		fmt.Printf("%-12s %10.2fms %10.2fms %12.2fms %10.2fms %6s\n",
			r.Collector, maxPause/1e6, r.Simple.Percentile(99.9)/1e6,
			metered, r.Simple.Percentile(50)/1e6, verdict)
	}

	fmt.Println("\nSPECjbb-style critical-jOPS (geomean throughput under the SLA ladder):")
	for _, r := range results {
		if r.Completed {
			fmt.Printf("  %-12s %8.1f events/s\n", r.Collector,
				chopin.CriticalJOPS(r.Events, nil))
		}
	}

	fmt.Println("\nReading the table:")
	fmt.Println(" - Judging by max pause alone, the concurrent collectors look best;")
	fmt.Println("   judged by what users experience (metered p99.9), they may not be —")
	fmt.Println("   their barrier and CPU costs slow every single request (the h2")
	fmt.Println("   effect from Figure 6 of the paper).")
	fmt.Println(" - Metered latency >= simple latency always: queued work feels")
	fmt.Println("   pauses too. SLAs should be evaluated against metered latency.")
}
