// Package chopin is a Go reproduction of the performance-analysis system
// from "Rethinking Java Performance Analysis" (ASPLOS 2025): the DaCapo
// Chopin benchmark suite and its methodologies, rebuilt over a deterministic
// discrete-event JVM simulator.
//
// The package exposes:
//
//   - the 22 workload models of the suite, calibrated to the paper's
//     published per-benchmark nominal statistics (Benchmarks, Lookup);
//   - five production garbage-collector models — Serial, Parallel, G1,
//     Shenandoah, ZGC — plus Generational ZGC, with the design properties
//     that drive the paper's findings (Collector);
//   - single runs under any (collector, heap, machine, compiler)
//     configuration (Run), and minimum-heap identification (MinHeapMB);
//   - the lower-bound-overhead methodology over collector-by-heap sweeps
//     (MeasureLBO, SuiteLBO — Figures 1 and 5);
//   - user-experienced latency: simple and metered distributions and MMU
//     (MeasureLatency, SimpleLatency, MeteredLatency, MMU — Figures 3
//     and 6);
//   - the 48 nominal statistics with ranking and scoring (Characterize,
//     CharacterizeSuite — Tables 1-3), and PCA over them (SuiteTable.PCA —
//     Figure 4).
//
// Everything runs in virtual time on a modelled machine, so experiments are
// deterministic given a seed and independent of the host.
package chopin

import (
	"io"

	"chopin/internal/cpuarch"
	"chopin/internal/exper"
	"chopin/internal/gc"
	"chopin/internal/gclog"
	"chopin/internal/harness"
	"chopin/internal/jit"
	"chopin/internal/latency"
	"chopin/internal/lbo"
	"chopin/internal/nominal"
	"chopin/internal/obs"
	"chopin/internal/trace"
	"chopin/internal/workload"
)

// Core types, aliased from the implementation packages so their methods and
// fields are part of the public API.
type (
	// Benchmark describes one workload of the suite.
	Benchmark = workload.Descriptor
	// RunConfig selects collector, heap, machine, compiler, iteration and
	// event counts for one invocation.
	RunConfig = workload.RunConfig
	// Result is the outcome of one invocation.
	Result = workload.Result
	// IterationResult is one iteration's measurements.
	IterationResult = workload.IterationResult
	// Event is one timed request/frame.
	Event = workload.Event
	// ErrOutOfMemory reports a heap below the workload's minimum.
	ErrOutOfMemory = workload.ErrOutOfMemory
	// Collector names a garbage-collector design.
	Collector = gc.Kind
	// CollectorParams is a collector configuration preset.
	CollectorParams = gc.Params
	// Machine is a processor model.
	Machine = cpuarch.Machine
	// ArchProfile is a workload's microarchitectural behaviour.
	ArchProfile = cpuarch.Profile
	// CompilerConfig selects a JIT configuration.
	CompilerConfig = jit.Config
	// SweepOptions configures multi-invocation experiment sweeps.
	SweepOptions = harness.Options
	// LBOGrid is a benchmark's (collector, heap) lower-bound-overhead grid.
	LBOGrid = lbo.Grid
	// LBOMeasurement is one cell of an LBOGrid.
	LBOMeasurement = lbo.Measurement
	// LBOOverhead is a normalized overhead cell.
	LBOOverhead = lbo.Overhead
	// GeomeanPoint is one point of the cross-suite Figure 1 curves.
	GeomeanPoint = lbo.GeomeanPoint
	// LatencyResult is one latency-experiment cell.
	LatencyResult = harness.LatencyResult
	// HeapSample is one post-GC occupancy observation.
	HeapSample = harness.HeapSample
	// Distribution is a latency sample with percentile queries.
	Distribution = latency.Distribution
	// LatencyEvent is a timed event in latency computations.
	LatencyEvent = latency.Event
	// GCPause is one stop-the-world interval.
	GCPause = trace.Pause
	// GCLog is a run's garbage-collection telemetry.
	GCLog = trace.Log
	// Characterization is a workload's measured nominal statistics.
	Characterization = nominal.Characterization
	// NominalOptions tunes characterization cost.
	NominalOptions = nominal.Options
	// NominalMetric describes one of the 48 nominal statistics.
	NominalMetric = nominal.Metric
	// SuiteTable is the suite-wide nominal table with ranks and scores.
	SuiteTable = nominal.SuiteTable
	// Size selects an input-size configuration (small/default/large/vlarge).
	Size = workload.Size
	// Setup is a Mytkowicz-style experimental environment whose incidental
	// layout biases measurements (Section 4.3's warning, made demonstrable).
	Setup = workload.Setup
	// Engine is the unified experiment engine: every invocation a
	// content-addressed job on one shared work-stealing pool, with optional
	// persistent result caching for incremental, resumable sweeps. Pass one
	// via SweepOptions.Engine to share it across experiments.
	Engine = exper.Engine
	// EngineOptions configures an Engine (workers, cache, observer).
	EngineOptions = exper.Options
	// EngineStats is a snapshot of an engine's execution counters.
	EngineStats = exper.Stats
	// EngineEvent is one structured progress notification from an Engine.
	EngineEvent = exper.Event
	// JobTicket is the handle Engine.Submit returns for one in-flight job;
	// Wait blocks for its outcome. Identical concurrent submissions share
	// one execution.
	JobTicket = exper.Ticket
	// MinHeapTicket is the handle for an asynchronous minimum-heap
	// measurement (Engine.SubmitMinHeap) — the anchor job of a sweep's DAG.
	MinHeapTicket = exper.MinHeapTicket
	// PendingLBO is a submitted-but-uncollected LBO sweep (SubmitLBO).
	PendingLBO = harness.PendingGrid
	// PendingSuiteLBO is a submitted whole-suite LBO plan (SubmitSuiteLBO).
	PendingSuiteLBO = harness.PendingSuite
	// PendingLatency is a submitted-but-uncollected latency sweep
	// (SubmitLatency).
	PendingLatency = harness.PendingLatency
	// ResultCache is the content-addressed invocation-level result store.
	ResultCache = exper.Cache
	// CacheMode selects how an engine uses its ResultCache.
	CacheMode = exper.CacheMode
	// Recorder receives structured run telemetry (GC phases, pacer stalls,
	// job lifecycle, cache accounting). Set one on RunConfig.Recorder,
	// SweepOptions.Recorder or EngineOptions.Recorder; NewJSONLRecorder
	// builds the standard file sink.
	Recorder = obs.Recorder
	// TelemetryEvent is one structured telemetry record.
	TelemetryEvent = obs.Event
	// TelemetryKind classifies a TelemetryEvent.
	TelemetryKind = obs.Kind
	// JSONLRecorder streams telemetry as one JSON object per line — the
	// format cmd/obsreport summarizes.
	JSONLRecorder = obs.JSONL
	// TelemetryStreamInfo summarizes a decoded stream's integrity: whether
	// it terminated with a clean run_end, and any sequence gaps or
	// reordering (DecodeTelemetryStream).
	TelemetryStreamInfo = obs.StreamInfo
)

// Cache modes: CacheReadWrite resumes from cached results; CacheWriteOnly
// forces a cold re-run while still recording fresh results.
const (
	CacheReadWrite = exper.ReadWrite
	CacheWriteOnly = exper.WriteOnly
)

// NewEngine builds an experiment engine and starts its worker pool.
func NewEngine(opt EngineOptions) *Engine { return exper.New(opt) }

// OpenResultCache opens (creating if necessary) a result cache rooted at
// dir, for EngineOptions.Cache.
func OpenResultCache(dir string, mode CacheMode) (*ResultCache, error) {
	return exper.OpenCache(dir, mode)
}

// NopRecorder is the disabled Recorder: it costs one boolean check on every
// potential emission and records nothing.
var NopRecorder = obs.Nop

// NewJSONLRecorder builds a Recorder that streams events to w as JSON lines.
// Call Close to flush before discarding it (Close does not close w).
func NewJSONLRecorder(w io.Writer) *JSONLRecorder { return obs.NewJSONL(w) }

// DecodeTelemetry reads a JSONL telemetry stream, calling fn per event.
func DecodeTelemetry(r io.Reader, fn func(TelemetryEvent) error) error {
	return obs.DecodeJSONL(r, fn)
}

// DecodeTelemetryStream is DecodeTelemetry with an integrity audit: the
// returned TelemetryStreamInfo reports whether the stream ended with a
// clean run_end terminator and counts dropped or reordered events, so a
// crash-truncated capture is distinguishable from a short run.
func DecodeTelemetryStream(r io.Reader, fn func(TelemetryEvent) error) (TelemetryStreamInfo, error) {
	return obs.DecodeStream(r, fn)
}

// WithRecorder returns opt with the telemetry recorder attached — the
// public-API way to observe every run a sweep launches.
func WithRecorder(opt SweepOptions, r Recorder) SweepOptions {
	opt.Recorder = r
	return opt
}

// RandomizedSetups draws n experimental environments — measuring across them
// is the standard mitigation for layout bias.
func RandomizedSetups(n int, seed uint64) []Setup {
	return workload.RandomizedSetups(n, seed)
}

// Input sizes. Benchmark.Scaled(SizeLarge) returns the scaled workload.
const (
	SizeDefault = workload.SizeDefault
	SizeSmall   = workload.SizeSmall
	SizeLarge   = workload.SizeLarge
	SizeVLarge  = workload.SizeVLarge
)

// ParseSize resolves a size configuration by name.
func ParseSize(name string) (Size, error) { return workload.ParseSize(name) }

// The garbage collectors of OpenJDK 21, in introduction order, plus the
// Generational ZGC extension.
const (
	Serial     = gc.Serial
	Parallel   = gc.Parallel
	G1         = gc.G1
	Shenandoah = gc.Shenandoah
	ZGC        = gc.ZGC
	GenZGC     = gc.GenZGC
)

// Compiler configurations (Recommendation P1 / nominal stats PIN, PCC, PCS).
const (
	Tiered          = jit.Tiered
	InterpreterOnly = jit.InterpreterOnly
	ForcedC2        = jit.ForcedC2
	WorstTier       = jit.WorstTier
)

// Machine models: the paper's reference AMD Zen4 testbed and the two
// cross-architecture comparison machines.
var (
	Zen4       = cpuarch.Zen4
	GoldenCove = cpuarch.GoldenCove
	NeoverseN1 = cpuarch.NeoverseN1
)

// Collectors lists the paper's five production collectors.
var Collectors = gc.Kinds

// AllCollectors additionally includes GenZGC.
var AllCollectors = gc.AllKinds

// ParseCollector resolves a collector by name.
func ParseCollector(name string) (Collector, error) { return gc.ParseKind(name) }

// ShenandoahMode selects one of Shenandoah's heuristics (the real
// collector's -XX:ShenandoahGCHeuristics options).
type ShenandoahMode = gc.ShenandoahMode

// Shenandoah heuristics.
const (
	ShenAdaptive   = gc.ShenAdaptive
	ShenStatic     = gc.ShenStatic
	ShenCompact    = gc.ShenCompact
	ShenAggressive = gc.ShenAggressive
)

// ShenandoahParams returns Shenandoah configured with the given heuristic,
// for use as RunConfig.CollectorParams.
func ShenandoahParams(mode ShenandoahMode, cores int) CollectorParams {
	return gc.ShenandoahParams(mode, cores)
}

// Benchmarks returns the 22 workloads of the suite in name order.
func Benchmarks() []*Benchmark { return workload.All() }

// LatencyBenchmarks returns the nine latency-sensitive workloads.
func LatencyBenchmarks() []*Benchmark { return workload.LatencySensitive() }

// BenchmarkNames returns all workload names in order.
func BenchmarkNames() []string { return workload.Names() }

// Lookup returns the named workload.
func Lookup(name string) (*Benchmark, error) { return workload.ByName(name) }

// Run executes one invocation of the benchmark under cfg.
func Run(b *Benchmark, cfg RunConfig) (*Result, error) { return workload.Run(b, cfg) }

// MinHeapMB measures the benchmark's minimum viable heap under the baseline
// G1 configuration — the denominator for all heap-factor sweeps
// (Recommendation H2).
func MinHeapMB(b *Benchmark, opt SweepOptions) (float64, error) {
	return harness.MinHeapMB(b, opt)
}

// MeasureLBO sweeps collectors and heap factors for one benchmark and
// returns its lower-bound-overhead grid and the measured minimum heap
// (Figure 5 and the appendix LBO figures).
func MeasureLBO(b *Benchmark, opt SweepOptions) (*LBOGrid, float64, error) {
	return harness.LBOGrid(b, opt)
}

// SuiteLBO measures LBO grids for the given benchmarks (nil = whole suite)
// and the cross-suite geometric-mean curves of Figure 1.
func SuiteLBO(bs []*Benchmark, opt SweepOptions) ([]*LBOGrid, []GeomeanPoint, error) {
	return harness.SuiteLBO(bs, opt)
}

// SubmitLBO registers one benchmark's whole LBO sweep as a job DAG — the
// min-heap measurement as anchor, every grid cell batched behind it — and
// returns immediately. Submit several sweeps before waiting on any to run a
// whole plan at host-core saturation; merged results are deterministic at
// any worker count.
func SubmitLBO(b *Benchmark, opt SweepOptions) *PendingLBO {
	return harness.SubmitLBOGrid(b, opt)
}

// SubmitSuiteLBO registers the whole suite's LBO plan (nil = every
// benchmark) as one up-front batch of job DAGs.
func SubmitSuiteLBO(bs []*Benchmark, opt SweepOptions) *PendingSuiteLBO {
	return harness.SubmitSuiteLBO(bs, opt)
}

// SubmitLatency registers the latency experiment of Figures 3 and 6 as a
// job DAG and returns immediately (nil factors = the paper's 2x and 6x).
func SubmitLatency(b *Benchmark, factors []float64, opt SweepOptions) *PendingLatency {
	return harness.SubmitLatency(b, factors, opt)
}

// MeasureLatency runs the latency experiment of Figures 3 and 6 at the
// given heap factors (nil = the paper's 2x and 6x).
func MeasureLatency(b *Benchmark, factors []float64, opt SweepOptions) ([]LatencyResult, error) {
	return harness.Latency(b, factors, opt)
}

// MeasureLatencyOpenLoop runs the latency experiment with the open-loop
// request discipline (scheduled arrivals, queueing): the ground truth that
// metered latency approximates. headroom stretches the arrival interval
// (2.0 = drive at half the nominal rate, safely below saturation).
func MeasureLatencyOpenLoop(b *Benchmark, factors []float64, headroom float64, opt SweepOptions) ([]LatencyResult, error) {
	return harness.LatencyOpenLoop(b, factors, headroom, opt)
}

// HeapTimeline samples post-GC heap occupancy over the timed iteration with
// G1 at 2x the minimum heap (the appendix heap figures).
func HeapTimeline(b *Benchmark, opt SweepOptions) ([]HeapSample, error) {
	return harness.HeapTimeline(b, opt)
}

// Characterize measures the benchmark's nominal statistics.
func Characterize(b *Benchmark, opt NominalOptions) (*Characterization, error) {
	return nominal.Characterize(b, opt)
}

// CharacterizeSuite characterizes every given benchmark (nil = whole suite)
// and assembles the ranked suite table behind Tables 2-3 and Figure 4.
func CharacterizeSuite(bs []*Benchmark, opt NominalOptions) (*SuiteTable, error) {
	if bs == nil {
		bs = workload.All()
	}
	chars := make([]*Characterization, 0, len(bs))
	for _, b := range bs {
		c, err := nominal.Characterize(b, opt)
		if err != nil {
			return nil, err
		}
		chars = append(chars, c)
	}
	return nominal.BuildSuite(chars), nil
}

// NominalMetrics lists the 48 nominal statistics of Table 1.
func NominalMetrics() []NominalMetric { return nominal.Metrics }

// Table2Metrics is the paper's Table 2 selection of the twelve most
// determinant nominal statistics.
var Table2Metrics = nominal.Table2Metrics

// FullSmoothing selects the uniform-arrival limit of metered latency.
const FullSmoothing = latency.FullSmoothing

// SimpleLatency returns per-event simple latencies.
func SimpleLatency(events []LatencyEvent) []float64 { return latency.Simple(events) }

// MeteredLatency returns per-event metered latencies under the given
// smoothing window in nanoseconds (FullSmoothing for uniform arrivals).
func MeteredLatency(events []LatencyEvent, windowNS float64) []float64 {
	return latency.Metered(events, windowNS)
}

// NewDistribution builds a percentile-queryable distribution.
func NewDistribution(vals []float64) *Distribution { return latency.NewDistribution(vals) }

// MMU computes minimum mutator utilization for the window size, from a
// run's pause log.
func MMU(pauses []GCPause, runStart, runEnd int64, windowNS float64) float64 {
	return latency.MMU(pauses, runStart, runEnd, windowNS)
}

// SLA is a latency service-level agreement for CriticalJOPS.
type SLA = latency.SLA

// DefaultSLAs is the SPECjbb2015-style SLA ladder (p99 from 10ms to 100ms).
var DefaultSLAs = latency.DefaultSLAs

// CriticalJOPS computes a SPECjbb2015-style critical-jOPS score — the
// geometric mean of the highest throughput sustaining each SLA — from a
// latency run (Section 3.2 of the paper discusses the metric).
func CriticalJOPS(events []LatencyEvent, slas []SLA) float64 {
	return latency.CriticalJOPS(events, slas)
}

// FormatGCLog renders a run's GC telemetry in OpenJDK unified-logging style
// (-Xlog:gc shape); capacityMB is the heap size shown per line.
func FormatGCLog(l *GCLog, capacityMB float64) string {
	return gclog.Format(l, capacityMB)
}

// ParseGCLog reconstructs GC telemetry from unified-logging text, returning
// the log and the heap capacity it records.
func ParseGCLog(text string) (*GCLog, float64, error) { return gclog.Parse(text) }

// SummarizeGCLog produces a one-line human summary of a run's collections.
func SummarizeGCLog(l *GCLog) string { return gclog.Summarize(l) }

// ToLatencyEvents converts a run's recorded events for the latency
// functions.
func ToLatencyEvents(events []Event) []LatencyEvent {
	out := make([]LatencyEvent, len(events))
	for i, e := range events {
		out[i] = LatencyEvent{Start: e.Start, End: e.End}
	}
	return out
}
