// Command benchjson captures `go test -bench -benchmem` output as JSON.
//
// It reads benchmark output on stdin, echoes it unchanged to stdout (so the
// run stays visible in the terminal and in CI logs), and writes a JSON file
// mapping benchmark name → {ns_per_op, b_per_op, allocs_per_op}. When a
// benchmark appears more than once (go test -count=N), the per-metric
// median is recorded, so a baseline captured with -count=5 is directly
// comparable to cmd/benchdiff's median-of-five gate runs. The GOMAXPROCS
// suffix (-8 etc.) is stripped so the names are stable across machines;
// `make bench` uses it to seed the repo's perf trajectory in BENCH_sim.json.
//
// For every benchmark recorded at both workers=1 and workers=8 (the
// full-suite scaling pair), a derived <name>/parallel-efficiency entry is
// added: the median of per-sample workers=1 ns ÷ workers=8 ns ratios — the
// suite's parallel speedup. -scaling-min gates on it: the run fails when
// any derived efficiency falls below the threshold ("auto" scales the
// expectation to the host: max(0.9, 0.5·min(8, NumCPU)), so an 8-core host
// demands ≥4x while a single core only demands not-regressing).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./internal/sim | benchjson -out BENCH_sim.json
//	benchjson -out /dev/null -scaling-min auto < bench-gate.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// effSuffix names derived scaling entries; benchdiff treats the metric as
// higher-is-better by this suffix.
const effSuffix = "/parallel-efficiency"

// Measurement is one benchmark's captured result.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      *int64  `json:"b_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

// benchLine matches `BenchmarkName-8   123456   78.9 ns/op ... 0 B/op  0 allocs/op`.
// Benchmarks that call b.ReportMetric interleave custom units between ns/op
// and the -benchmem columns, so B/op and allocs/op are matched anywhere after
// ns/op rather than immediately adjacent.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:.*?\s(\d+) B/op)?(?:.*?\s(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_sim.json", "output JSON path")
	scalingMin := flag.String("scaling-min", "", "fail unless every derived parallel-efficiency is at least this (a ratio, or 'auto' for a host-scaled threshold; empty disables)")
	flag.Parse()

	samples := map[string][]Measurement{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		meas := Measurement{NsPerOp: ns, Iterations: iters}
		if m[4] != "" {
			b, _ := strconv.ParseInt(m[4], 10, 64)
			meas.BPerOp = &b
		}
		if m[5] != "" {
			a, _ := strconv.ParseInt(m[5], 10, 64)
			meas.AllocsPerOp = &a
		}
		samples[m[1]] = append(samples[m[1]], meas)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	for n, ss := range deriveEfficiency(samples) {
		samples[n] = ss
	}
	results := make(map[string]Measurement, len(samples))
	for n, ss := range samples {
		results[n] = medianMeasurement(ss)
	}

	// Deterministic output: marshal via a sorted intermediate form.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	buf = append(buf, "{\n"...)
	for i, n := range names {
		entry, err := json.Marshal(results[n])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, fmt.Sprintf("  %q: %s", n, entry)...)
		if i < len(names)-1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
	}
	buf = append(buf, "}\n"...)
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)

	if *scalingMin != "" {
		if err := gateScaling(results, *scalingMin); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}

// deriveEfficiency pairs each benchmark's workers=1 and workers=8 samples
// positionally (-count runs emit them in the same order) into per-sample
// speedup ratios, returned as synthetic <base>/parallel-efficiency sample
// sets for the same median reduction as every real metric.
func deriveEfficiency(samples map[string][]Measurement) map[string][]Measurement {
	derived := map[string][]Measurement{}
	for name, w1 := range samples {
		base, ok := strings.CutSuffix(name, "/workers=1")
		if !ok {
			continue
		}
		w8 := samples[base+"/workers=8"]
		for i := 0; i < len(w1) && i < len(w8); i++ {
			if w8[i].NsPerOp <= 0 {
				continue
			}
			derived[base+effSuffix] = append(derived[base+effSuffix],
				Measurement{NsPerOp: w1[i].NsPerOp / w8[i].NsPerOp, Iterations: 1})
		}
	}
	return derived
}

// gateScaling enforces the scaling floor on every derived efficiency entry.
// "auto" scales the demand to the host: half of ideal speedup up to 8
// workers (≥4x on an 8-core host), but never below 0.9 — a single-core host
// cannot speed up, yet must not slow down either.
func gateScaling(results map[string]Measurement, min string) error {
	thr := 0.0
	if min == "auto" {
		ideal := runtime.NumCPU()
		if ideal > 8 {
			ideal = 8
		}
		thr = 0.5 * float64(ideal)
		if thr < 0.9 {
			thr = 0.9
		}
	} else {
		v, err := strconv.ParseFloat(min, 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad -scaling-min %q (want a positive ratio or 'auto')", min)
		}
		thr = v
	}
	names := make([]string, 0, len(results))
	for n := range results {
		if strings.HasSuffix(n, effSuffix) {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("-scaling-min set but no workers=1/workers=8 pair on stdin")
	}
	sort.Strings(names)
	var failed []string
	for _, n := range names {
		eff := results[n].NsPerOp
		status := "ok"
		if eff < thr {
			status = "FAIL"
			failed = append(failed, n)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s = %.2fx (floor %.2fx) %s\n", n, eff, thr, status)
	}
	if len(failed) > 0 {
		return fmt.Errorf("parallel efficiency below %.2fx: %s", thr, strings.Join(failed, ", "))
	}
	return nil
}

// medianMeasurement reduces repeated samples of one benchmark (-count=N)
// to their per-metric medians. Metrics are reduced independently: the
// median ns/op run is not necessarily the median-allocation run, and a
// per-metric median is the robust baseline for benchdiff's median gate.
func medianMeasurement(ss []Measurement) Measurement {
	med := Measurement{
		NsPerOp:    medianFloat(ss, func(m Measurement) (float64, bool) { return m.NsPerOp, true }),
		Iterations: int64(medianFloat(ss, func(m Measurement) (float64, bool) { return float64(m.Iterations), true })),
	}
	if b := medianInt(ss, func(m Measurement) *int64 { return m.BPerOp }); b != nil {
		med.BPerOp = b
	}
	if a := medianInt(ss, func(m Measurement) *int64 { return m.AllocsPerOp }); a != nil {
		med.AllocsPerOp = a
	}
	return med
}

func medianFloat(ss []Measurement, get func(Measurement) (float64, bool)) float64 {
	var vs []float64
	for _, m := range ss {
		if v, ok := get(m); ok {
			vs = append(vs, v)
		}
	}
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	if n := len(vs); n%2 == 1 {
		return vs[n/2]
	} else {
		return (vs[n/2-1] + vs[n/2]) / 2
	}
}

func medianInt(ss []Measurement, get func(Measurement) *int64) *int64 {
	var vs []int64
	for _, m := range ss {
		if p := get(m); p != nil {
			vs = append(vs, *p)
		}
	}
	if len(vs) == 0 {
		return nil
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	v := vs[len(vs)/2]
	return &v
}
