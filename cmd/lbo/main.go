// Command lbo reproduces the paper's lower-bound-overhead experiments:
// Figure 1 (cross-suite geometric means), Figure 5 (cassandra and lusearch)
// and the per-benchmark appendix figures.
//
// Usage:
//
//	lbo -geomean                       # Figure 1 over the whole suite
//	lbo -bench cassandra,lusearch      # Figure 5
//	lbo -bench h2 -factors 1,2,4,6     # custom sweep
//	lbo -geomean -out results/         # also write CSV data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"chopin/internal/exper"
	"chopin/internal/figures"
	"chopin/internal/gc"
	"chopin/internal/harness"
	"chopin/internal/lbo"
	"chopin/internal/persist"
	"chopin/internal/report"
)

func main() {
	var (
		benchList   = flag.String("bench", "", "comma-separated benchmarks (default: whole suite)")
		geomean     = flag.Bool("geomean", false, "print the Figure 1 cross-suite geomean curves")
		factorsFlag = flag.String("factors", "", "comma-separated heap factors (default 1,1.25,1.5,2,2.5,3,4,5,6)")
		gcsFlag     = flag.String("collectors", "", "comma-separated collectors (default: the paper's five)")
		invocations = flag.Int("invocations", 3, "invocations per configuration (paper: 10)")
		iterations  = flag.Int("iterations", 3, "iterations per invocation; last is timed")
		events      = flag.Int("events", 0, "events per iteration (0 = workload default / 4)")
		seed        = flag.Uint64("seed", 42, "deterministic seed")
		outDir      = flag.String("out", "", "directory for CSV output (optional)")
		jsonOut     = flag.Bool("json", false, "also write JSON archives next to the CSVs")
	)
	var cli exper.CLI
	cli.RegisterFlags(flag.CommandLine, "")
	flag.Parse()

	eng, err := cli.Build(os.Stderr, "lbo: ")
	check(err)
	defer cli.CloseOrWarn(os.Stderr, "lbo: ")
	defer func() { fmt.Fprintf(os.Stderr, "lbo: %s\n", exper.Summary(eng.Stats())) }()

	opt := harness.Options{
		Invocations: *invocations,
		Iterations:  *iterations,
		Events:      *events,
		Seed:        *seed,
		Engine:      eng,
	}
	opt.HeapFactors, err = exper.ParseFactors(*factorsFlag)
	check(err)
	opt.Collectors, err = exper.ParseCollectors(*gcsFlag)
	check(err)

	ds, err := exper.SelectBenchmarks(*benchList)
	check(err)

	if *geomean {
		fmt.Fprintf(os.Stderr, "lbo: sweeping %d benchmarks x %d collectors x %d heap factors, %d invocations each\n",
			len(ds), pick(len(opt.Collectors), len(gc.Kinds)),
			pick(len(opt.HeapFactors), len(harness.DefaultHeapFactors)), *invocations)
		grids, pts, err := harness.SuiteLBO(ds, opt)
		check(err)
		names := collectorNames(opt)
		fmt.Print(figures.GeomeanFigure(pts, names))
		if *outDir != "" {
			check(writeGeomeanCSV(*outDir, pts))
			for _, g := range grids {
				check(writeGridCSV(*outDir, g))
			}
			if *jsonOut {
				check(persist.SaveGeomean(filepath.Join(*outDir, "figure1_geomean.json"), pts))
				for _, g := range grids {
					check(persist.SaveGrid(filepath.Join(*outDir, "lbo_"+g.Benchmark+".json"), g))
				}
			}
			fmt.Fprintf(os.Stderr, "lbo: CSV written to %s\n", *outDir)
		}
		return
	}

	// Submit every benchmark's sweep before collecting any: the engine sees
	// the whole batch at once, and output stays in benchmark order.
	pending := make([]*harness.PendingGrid, len(ds))
	for i, d := range ds {
		fmt.Fprintf(os.Stderr, "lbo: sweeping %s\n", d.Name)
		pending[i] = harness.SubmitLBOGrid(d, opt)
	}
	for i := range ds {
		grid, minMB, err := pending[i].Wait()
		check(err)
		out, err := figures.LBOFigure(grid, minMB)
		check(err)
		fmt.Println(out)
		if *outDir != "" {
			check(writeGridCSV(*outDir, grid))
			if *jsonOut {
				check(persist.SaveGrid(filepath.Join(*outDir, "lbo_"+grid.Benchmark+".json"), grid))
			}
		}
	}
}

func pick(n, def int) int {
	if n > 0 {
		return n
	}
	return def
}

func collectorNames(opt harness.Options) []string {
	ks := opt.Collectors
	if ks == nil {
		ks = gc.Kinds
	}
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.String()
	}
	return names
}

func writeGeomeanCSV(dir string, pts []lbo.GeomeanPoint) error {
	t := report.NewTable("collector", "heap_factor", "wall_lbo", "cpu_lbo", "benchmarks", "complete")
	for _, p := range pts {
		t.AddRowf(p.Collector, p.HeapFactor, p.Wall, p.CPU, p.Benchmarks, p.Complete)
	}
	return writeCSV(filepath.Join(dir, "figure1_geomean.csv"), t)
}

func writeGridCSV(dir string, g *lbo.Grid) error {
	ovs, err := g.Overheads()
	if err != nil {
		return err
	}
	t := report.NewTable("benchmark", "collector", "heap_factor", "heap_mb",
		"completed", "wall_lbo", "cpu_lbo")
	for _, o := range ovs {
		t.AddRowf(g.Benchmark, o.Collector, o.HeapFactor, o.HeapMB, o.Completed, o.Wall, o.CPU)
	}
	return writeCSV(filepath.Join(dir, "lbo_"+g.Benchmark+".csv"), t)
}

func writeCSV(path string, t *report.Table) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t.CSV(f)
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbo: %v\n", err)
		os.Exit(1)
	}
}
