// Command appendix regenerates the paper's Appendix B: for every benchmark
// in the suite, its description, complete nominal statistics (Tables 3-24),
// lower-bound-overhead figures, post-GC heap-size timeline, and — for the
// nine latency-sensitive workloads — simple and metered latency tables at 2x
// and 6x heaps.
//
// Usage:
//
//	appendix -out appendix/                 # the whole suite
//	appendix -bench avrora,h2 -out out/     # a subset
//	appendix -quick                         # reduced sweep settings
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"chopin/internal/exper"
	"chopin/internal/figures"
	"chopin/internal/harness"
	"chopin/internal/nominal"
	"chopin/internal/workload"
)

func main() {
	var (
		benchList = flag.String("bench", "", "comma-separated benchmarks (default: whole suite)")
		outDir    = flag.String("out", "appendix", "output directory")
		events    = flag.Int("events", 0, "events per run (0 = reduced default)")
		invoc     = flag.Int("invocations", 2, "invocations per LBO configuration")
		seed      = flag.Uint64("seed", 42, "deterministic seed")
		quick     = flag.Bool("quick", true, "skip size-variant min-heap searches")
	)
	var cli exper.CLI
	cli.RegisterFlags(flag.CommandLine, "")
	flag.Parse()
	check(os.MkdirAll(*outDir, 0o755))

	eng, err := cli.Build(os.Stderr, "appendix: ")
	check(err)
	defer cli.CloseOrWarn(os.Stderr, "appendix: ")

	ds, err := exper.SelectBenchmarks(*benchList)
	check(err)

	// Suite-wide characterization first: ranks are relative to the suite.
	// Benchmarks characterize concurrently over the shared engine pool.
	chars := make([]*nominal.Characterization, len(ds))
	charErrs := make([]error, len(ds))
	var wg sync.WaitGroup
	for i, d := range ds {
		fmt.Fprintf(os.Stderr, "appendix: characterizing %s\n", d.Name)
		wg.Add(1)
		go func(i int, d *workload.Descriptor) {
			defer wg.Done()
			chars[i], charErrs[i] = nominal.Characterize(d, nominal.Options{
				Events: *events, Seed: *seed, SkipSizeVariants: *quick, Run: eng.Run,
			})
		}(i, d)
	}
	wg.Wait()
	for _, err := range charErrs {
		check(err)
	}
	table := nominal.BuildSuite(chars)

	opt := harness.Options{
		Invocations: *invoc,
		Events:      *events,
		Seed:        *seed,
		HeapFactors: []float64{1, 1.5, 2, 3, 4, 6},
		Engine:      eng,
	}
	// Every section's sweeps are submitted before any section is rendered:
	// each benchmark's LBO grid and latency sweep go in as job DAGs sharing
	// one min-heap anchor, keeping the pool saturated across the suite.
	sections := make([]*pendingSection, len(ds))
	for i, d := range ds {
		fmt.Fprintf(os.Stderr, "appendix: submitting sweeps for %s\n", d.Name)
		sections[i] = submitSection(d, opt)
	}
	for i, d := range ds {
		fmt.Fprintf(os.Stderr, "appendix: building section for %s\n", d.Name)
		check(sections[i].render(d, table, opt, *outDir))
	}
	fmt.Fprintf(os.Stderr, "appendix: written to %s\n", *outDir)
}

// pendingSection holds one benchmark's in-flight sweeps.
type pendingSection struct {
	grid    *harness.PendingGrid
	latency *harness.PendingLatency // nil unless latency-sensitive
}

// submitSection registers the benchmark's appendix sweeps with the engine.
func submitSection(d *workload.Descriptor, opt harness.Options) *pendingSection {
	p := &pendingSection{grid: harness.SubmitLBOGrid(d, opt)}
	if d.LatencySensitive {
		p.latency = harness.SubmitLatency(d, []float64{2, 6}, opt)
	}
	return p
}

// render collects the benchmark's sweeps and writes its appendix chapter.
func (p *pendingSection) render(d *workload.Descriptor, table *nominal.SuiteTable,
	opt harness.Options, outDir string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", strings.ToUpper(d.Name), strings.Repeat("=", len(d.Name)))
	fmt.Fprintf(&b, "%s\n", d.Description)
	if d.NewInChopin {
		b.WriteString("(New in the Chopin release.)\n")
	}
	if d.Estimated {
		b.WriteString("(Calibration targets partially estimated; see DESIGN.md.)\n")
	}
	b.WriteString("\n--- Nominal statistics ---\n\n")
	stats, err := figures.BenchmarkTable(table, d.Name)
	if err != nil {
		return err
	}
	b.WriteString(stats)

	b.WriteString("\n--- Lower bound overheads ---\n\n")
	grid, minMB, err := p.grid.Wait()
	if err != nil {
		return err
	}
	lboOut, err := figures.LBOFigure(grid, minMB)
	if err != nil {
		return err
	}
	b.WriteString(lboOut)

	b.WriteString("\n--- Post-GC heap size (G1, 2.0x heap) ---\n\n")
	samples, err := harness.HeapTimeline(d, opt)
	if err != nil {
		return err
	}
	b.WriteString(figures.HeapTimelineFigure(d.Name, samples))

	if p.latency != nil {
		b.WriteString("\n--- User-experienced latency (2x and 6x heaps) ---\n\n")
		results, err := p.latency.Wait()
		if err != nil {
			return err
		}
		b.WriteString(figures.LatencyFigure(results))
		b.WriteString("\n")
		b.WriteString(figures.PauseSummary(results))
	}

	path := filepath.Join(outDir, d.Name+".txt")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "appendix: %v\n", err)
		os.Exit(1)
	}
}
