// Command nominal reports the paper's nominal workload statistics: the
// metric catalogue (Table 1), the twelve most determinant statistics for all
// benchmarks (Table 2), complete per-benchmark appendix tables (Tables 3+),
// and the Section 6.4 architectural-sensitivity analysis.
//
// Usage:
//
//	nominal -describe            # Table 1
//	nominal -table2              # Table 2 (characterizes the whole suite)
//	nominal -bench avrora        # appendix-style per-benchmark table
//	nominal -arch                # Section 6.4 IPC analysis
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"chopin/internal/cpuarch"
	"chopin/internal/exper"
	"chopin/internal/figures"
	"chopin/internal/nominal"
	"chopin/internal/report"
	"chopin/internal/workload"
)

func main() {
	var (
		describe  = flag.Bool("describe", false, "print the metric catalogue (Table 1)")
		table2    = flag.Bool("table2", false, "print Table 2 across the whole suite")
		benchName = flag.String("bench", "", "print the benchmark's complete nominal statistics")
		arch      = flag.Bool("arch", false, "print the Section 6.4 architectural-sensitivity analysis")
		calib     = flag.Bool("calibration", false, "print measured vs published calibration targets per workload")
		events    = flag.Int("events", 0, "events per characterization run (0 = default)")
		quick     = flag.Bool("quick", true, "skip size-variant min-heap searches")
		seed      = flag.Uint64("seed", 42, "deterministic seed")
	)
	var cli exper.CLI
	cli.RegisterFlags(flag.CommandLine, "")
	flag.Parse()

	eng, err := cli.Build(os.Stderr, "nominal: ")
	check(err)
	defer cli.CloseOrWarn(os.Stderr, "nominal: ")

	switch {
	case *describe:
		fmt.Print(figures.Table1())
	case *arch:
		printArchAnalysis()
	case *calib:
		printCalibration(eng, *events, *seed)
	case *table2:
		table := characterizeAll(eng, *events, *quick, *seed)
		fmt.Println("Table 2: the twelve most determinant nominal statistics (rank: value)")
		fmt.Print(figures.Table2(table))
	case *benchName != "":
		d, err := workload.ByName(*benchName)
		check(err)
		fmt.Fprintf(os.Stderr, "nominal: characterizing the suite for suite-relative ranks\n")
		table := characterizeAll(eng, *events, *quick, *seed)
		out, err := figures.BenchmarkTable(table, d.Name)
		check(err)
		fmt.Printf("%s: %s\n\n%s", d.Name, d.Description, out)
	default:
		fmt.Fprintln(os.Stderr, "nominal: pass one of -describe, -table2, -bench <name>, -arch")
		os.Exit(2)
	}
}

func characterizeAll(eng *exper.Engine, events int, quick bool, seed uint64) *nominal.SuiteTable {
	// Characterizations are independent per benchmark: run the whole suite
	// concurrently over the shared engine pool (every probe is an engine
	// job), assembling the table in suite order.
	ds := workload.All()
	chars := make([]*nominal.Characterization, len(ds))
	errs := make([]error, len(ds))
	var wg sync.WaitGroup
	for i, d := range ds {
		fmt.Fprintf(os.Stderr, "nominal: characterizing %s\n", d.Name)
		wg.Add(1)
		go func(i int, d *workload.Descriptor) {
			defer wg.Done()
			chars[i], errs[i] = nominal.Characterize(d, nominal.Options{
				Events: events, Seed: seed, SkipSizeVariants: quick, Run: eng.Run,
			})
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		check(err)
	}
	return nominal.BuildSuite(chars)
}

// printCalibration compares each workload's measured headline statistics
// with the published values its model was calibrated to.
func printCalibration(eng *exper.Engine, events int, seed uint64) {
	t := report.NewTable("benchmark",
		"GMD meas", "GMD pub", "ARA meas", "ARA pub", "PET meas", "PET pub", "GSS meas")
	ds := workload.All()
	chars := make([]*nominal.Characterization, len(ds))
	errs := make([]error, len(ds))
	var wg sync.WaitGroup
	for i, d := range ds {
		fmt.Fprintf(os.Stderr, "nominal: measuring %s\n", d.Name)
		wg.Add(1)
		go func(i int, d *workload.Descriptor) {
			defer wg.Done()
			chars[i], errs[i] = nominal.Characterize(d, nominal.Options{
				Events: events, Seed: seed, SkipSizeVariants: true, Invocations: 2, Run: eng.Run,
			})
		}(i, d)
	}
	wg.Wait()
	for i, d := range ds {
		check(errs[i])
		c := chars[i]
		t.AddRowf(d.Name,
			c.Value("GMD"), d.MinHeapMB,
			c.Value("ARA"), d.ARA,
			c.Value("PET"), d.PETSeconds,
			c.Value("GSS"))
	}
	fmt.Println("calibration: measured nominal statistics vs published targets")
	fmt.Print(t.String())
}

// printArchAnalysis reproduces the Section 6.4 discussion: the IPC extremes
// of the suite and what the top-down model attributes them to.
func printArchAnalysis() {
	t := report.NewTable("benchmark", "IPC", "front-end", "bad-spec", "back-end",
		"be-memory", "LLC/MI", "DC/KI", "DTLB/MI", "slow-DRAM x", "LLC/16 x", "boost x")
	for _, d := range workload.All() {
		td := d.Arch.Analyze(cpuarch.Zen4)
		t.AddRowf(d.Name, td.IPC, td.FrontEnd, td.BadSpec, td.BackEnd, td.BackEndMemory,
			d.Arch.LLCMissPerMI, d.Arch.DCMissPerKI, d.Arch.DTLBMissPerMI,
			d.Arch.TimeFactor(cpuarch.Zen4.WithSlowDRAM()),
			d.Arch.TimeFactor(cpuarch.Zen4.WithLLCScale(1.0/16)),
			d.Arch.TimeFactor(cpuarch.Zen4.WithBoost(cpuarch.ZenBoostGHz)))
	}
	fmt.Println("Section 6.4: architectural sensitivity on the reference Zen4 machine")
	fmt.Print(t.String())
	fmt.Println()
	for _, focus := range []struct{ name, note string }{
		{"biojava", "highest IPC: tuned computation, lowest cache misses, gains most from frequency"},
		{"jython", "high IPC from an interpreter loop; pays in bad speculation, indifferent to memory"},
		{"xalan", "low IPC from poor locality: high data-cache, LLC and DTLB miss rates"},
		{"h2o", "lowest IPC: memory-bound ML, highest LLC misses and back-end stalls, DRAM-speed sensitive"},
	} {
		d, err := workload.ByName(focus.name)
		check(err)
		td := d.Arch.Analyze(cpuarch.Zen4)
		fmt.Printf("%-8s IPC %.2f  %s\n", d.Name, td.IPC, focus.note)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "nominal: %v\n", err)
		os.Exit(1)
	}
}
