// Command obsreport summarizes a telemetry stream captured with the
// -telemetry flag of the experiment commands: per-collector GC phase-time
// breakdowns, pacer-stall histograms, cache accounting and job totals,
// rendered as aligned ASCII tables. It also audits the stream itself —
// missing run_end terminators, sequence gaps and reordering are reported
// rather than silently skewing the aggregates.
//
// With -trace-out the stream is additionally folded into causal span trees
// (GC cycles owning their pauses, stalls blamed on the throttling cycle)
// and exported as Chrome trace-event JSON for chrome://tracing / Perfetto;
// -timeline renders the same spans as a terminal timeline.
//
// Usage:
//
//	lbo -bench lusearch -telemetry run.jsonl
//	obsreport run.jsonl
//	obsreport -collector Shenandoah run.jsonl   # restrict to one collector
//	obsreport -trace-out run.trace.json run.jsonl
//	obsreport -timeline run.jsonl
//	obsreport -sched run.jsonl                  # pool utilization table
//	obsreport -fleet fleet.jsonl                # request blame + retry forensics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"chopin/internal/obs"
	"chopin/internal/obs/span"
	"chopin/internal/obs/traceview"
	"chopin/internal/report"
)

type phaseKey struct {
	collector string
	phase     string
}

type phaseAgg struct {
	count  int
	stwNS  float64
	cpuNS  float64
	reclMB float64
}

type collectorAgg struct {
	pauseNS   float64
	pauses    int
	stallNS   float64
	stalls    int
	stallHist *obs.Histogram
	degens    int
	ooms      int
}

type jobAgg struct {
	started, finished, failed int
	hits, misses              int
	wallNS, cpuNS             float64
	minHeaps                  int
}

func main() {
	var (
		collectorFilter = flag.String("collector", "", "restrict the report to one collector")
		benchFilter     = flag.String("bench", "", "restrict the report to one benchmark")
		traceOut        = flag.String("trace-out", "", "write causal span timelines as Chrome trace-event JSON to this file")
		timeline        = flag.Bool("timeline", false, "render a terminal span timeline per run")
		timelineWidth   = flag.Int("timeline-width", 72, "timeline bar width in cells")
		sched           = flag.Bool("sched", false, "render the engine's scheduler-utilization table (per-worker busy/steal/park, lane occupancy)")
		fleetTables     = flag.Bool("fleet", false, "render fleet request forensics (blame totals, slowest requests, per-replica correlation, retry storms)")
		fleetTop        = flag.Int("fleet-top", 5, "how many slowest requests -fleet lists per run")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		check(err)
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}

	phases := map[phaseKey]*phaseAgg{}
	cols := map[string]*collectorAgg{}
	jobs := jobAgg{}
	runs := map[string]bool{}
	var total, skipped, samples int
	// Span folding needs the whole (filtered) stream in memory; only pay
	// for it when an export was requested.
	wantSpans := *traceOut != "" || *timeline || *fleetTables
	var kept []obs.Event
	var schedEvents []obs.Event

	col := func(name string) *collectorAgg {
		c := cols[name]
		if c == nil {
			c = &collectorAgg{stallHist: obs.NewHistogram(obs.StallBoundsNS)}
			cols[name] = c
		}
		return c
	}

	info, err := obs.DecodeStream(in, func(e obs.Event) error {
		total++
		if *collectorFilter != "" && e.Collector != *collectorFilter {
			skipped++
			return nil
		}
		if *benchFilter != "" && e.Benchmark != *benchFilter {
			skipped++
			return nil
		}
		if e.Run != "" {
			runs[e.Run] = true
		}
		if wantSpans {
			kept = append(kept, e)
		}
		switch e.Kind {
		case obs.KindGCPhaseEnd:
			k := phaseKey{e.Collector, e.Phase}
			p := phases[k]
			if p == nil {
				p = &phaseAgg{}
				phases[k] = p
			}
			p.count++
			p.stwNS += e.DurNS
			p.cpuNS += e.CPUNS
			p.reclMB += e.Value / (1 << 20)
		case obs.KindGCPause:
			c := col(e.Collector)
			c.pauseNS += e.DurNS
			c.pauses++
		case obs.KindPacerStall:
			c := col(e.Collector)
			c.stallNS += e.DurNS
			c.stalls++
			c.stallHist.Observe(e.DurNS)
		case obs.KindDegenerateGC:
			col(e.Collector).degens++
		case obs.KindOOM:
			col(e.Collector).ooms++
		case obs.KindJobStart:
			jobs.started++
		case obs.KindJobFinish:
			if e.Err != "" {
				jobs.failed++
			} else {
				jobs.finished++
			}
			jobs.wallNS += e.DurNS
			jobs.cpuNS += e.CPUNS
		case obs.KindCacheHit:
			jobs.hits++
		case obs.KindCacheMiss:
			jobs.misses++
		case obs.KindMinHeap:
			jobs.minHeaps++
		case obs.KindSample:
			samples++
		case obs.KindSchedWorker:
			if *sched {
				schedEvents = append(schedEvents, e)
			}
		}
		return nil
	})
	if err != nil {
		// A truncated tail (killed run) still yields a usable prefix; report
		// what decoded and say why it stopped.
		fmt.Fprintf(os.Stderr, "obsreport: stream ended early: %v\n", err)
	}
	if werr := info.Err(); werr != nil {
		// Integrity problems skew every aggregate below; say so up front.
		fmt.Fprintf(os.Stderr, "obsreport: warning: %v\n", werr)
	}

	fmt.Printf("telemetry: %s — %d events", name, total)
	if skipped > 0 {
		fmt.Printf(" (%d filtered out)", skipped)
	}
	if len(runs) > 0 {
		fmt.Printf(", %d runs", len(runs))
	}
	if samples > 0 {
		fmt.Printf(", %d samples", samples)
	}
	fmt.Println()
	if info.Unknown > 0 {
		// Count-and-skip keeps old readers working on streams written by
		// newer builds; say what was skipped so gaps aren't mysterious.
		fmt.Printf("  %d event(s) of unknown kind skipped (stream written by a newer build?)\n", info.Unknown)
	}

	if len(phases) > 0 {
		fmt.Println("\nGC phase breakdown (telemetry sums reproduce the run's log totals):")
		t := report.NewTable("collector", "phase", "count", "stw_ms", "gc_cpu_ms", "reclaimed_mb")
		for _, k := range sortedPhaseKeys(phases) {
			p := phases[k]
			t.AddRowf(k.collector, k.phase, p.count, p.stwNS/1e6, p.cpuNS/1e6, p.reclMB)
		}
		t.Render(os.Stdout)
	}

	if len(cols) > 0 {
		fmt.Println("\nPer-collector STW and pacing:")
		t := report.NewTable("collector", "pauses", "stw_ms", "stalls", "stall_ms", "degenerations", "ooms")
		for _, name := range sortedKeys(cols) {
			c := cols[name]
			t.AddRowf(name, c.pauses, c.pauseNS/1e6, c.stalls, c.stallNS/1e6, c.degens, c.ooms)
		}
		t.Render(os.Stdout)
		for _, name := range sortedKeys(cols) {
			c := cols[name]
			if c.stalls == 0 {
				continue
			}
			fmt.Printf("\n%s pacer-stall histogram (%d stalls, %.2fms total):\n",
				name, c.stalls, c.stallNS/1e6)
			fmt.Print(c.stallHist.String())
		}
	}

	if jobs.started+jobs.hits+jobs.misses+jobs.minHeaps > 0 {
		fmt.Println("\nEngine jobs and cache:")
		t := report.NewTable("metric", "value")
		t.AddRowf("jobs started", jobs.started)
		t.AddRowf("jobs finished", jobs.finished)
		t.AddRowf("jobs failed", jobs.failed)
		t.AddRowf("cache hits", jobs.hits)
		t.AddRowf("cache misses", jobs.misses)
		if looked := jobs.hits + jobs.misses; looked > 0 {
			t.AddRow("cache hit rate", fmt.Sprintf("%.1f%%", 100*float64(jobs.hits)/float64(looked)))
		}
		t.AddRowf("min-heap measurements", jobs.minHeaps)
		t.AddRowf("job wall total (s)", jobs.wallNS/1e9)
		t.AddRowf("job sim-cpu total (s)", jobs.cpuNS/1e9)
		t.Render(os.Stdout)
	}

	if *sched {
		if len(schedEvents) == 0 {
			fmt.Println("\nno scheduler telemetry in stream (engines emit it on Close)")
		} else {
			fmt.Println("\nScheduler utilization (one row per pool worker):")
			obs.WriteSchedTable(os.Stdout, schedEvents)
		}
	}

	if *fleetTables {
		fts := span.BuildFleet(kept)
		if len(fts) == 0 {
			fmt.Println("\nno fleet telemetry in stream (capture with: fleet -bench ... -telemetry file.jsonl)")
		}
		for _, ft := range fts {
			renderFleet(ft, *fleetTop)
		}
	}

	if *traceOut != "" || *timeline {
		trees := span.Build(kept)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			check(err)
			check(traceview.WriteChromeTrace(f, trees))
			check(f.Close())
			fmt.Printf("\nwrote %d run timeline(s) to %s (load in Perfetto or chrome://tracing)\n",
				len(trees), *traceOut)
		}
		if *timeline {
			fmt.Println()
			check(traceview.WriteTimeline(os.Stdout, trees, *timelineWidth))
		}
	}
}

// renderFleet prints one fleet run's forensic tables: the blame-decomposed
// latency totals, the slowest requests, the per-replica pause/traffic
// correlation, and — when the run retried — the retry-storm summary.
func renderFleet(ft *span.FleetTrace, top int) {
	name := ft.Run
	if name == "" {
		name = "(fleet)"
	}
	fmt.Printf("\nfleet run %s (%s/%s): %d replicas, %d requests, %d routes, %d retries\n",
		name, ft.Benchmark, ft.Collector, len(ft.Replicas), len(ft.Requests), len(ft.Routes), len(ft.Retries))
	if len(ft.Requests) == 0 {
		return
	}

	bt := span.SumBlame(ft.Requests)
	pct := func(ns int64) string {
		if bt.E2ENS == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(ns)/float64(bt.E2ENS))
	}
	fmt.Println("\nwhere the latency went (blame components sum exactly to end-to-end):")
	t := report.NewTable("component", "total_ms", "share")
	t.AddRowf("queueing", float64(bt.QueueNS)/1e6, pct(bt.QueueNS))
	t.AddRowf("gc pauses", float64(bt.GCNS)/1e6, pct(bt.GCNS))
	t.AddRowf("service", float64(bt.ServNS)/1e6, pct(bt.ServNS))
	t.AddRowf("retry overhead", float64(bt.RetryNS)/1e6, pct(bt.RetryNS))
	t.AddRowf("end-to-end", float64(bt.E2ENS)/1e6, "100.0%")
	t.Render(os.Stdout)

	fmt.Printf("\ntop %d slowest requests:\n", top)
	t = report.NewTable("id", "replica", "attempts", "e2e_ms", "queue_ms", "gc_ms", "service_ms", "retry_ms", "pauses")
	for _, q := range span.TopSlowest(ft.Requests, top) {
		t.AddRowf(q.ID, q.Replica, q.Attempts,
			float64(q.E2ENS)/1e6, float64(q.QueueNS)/1e6, float64(q.GCNS)/1e6,
			float64(q.ServNS)/1e6, float64(q.RetryNS)/1e6, q.GCPauses)
	}
	t.Render(os.Stdout)

	fmt.Println("\nper-replica pause/traffic correlation:")
	t = report.NewTable("replica", "routed", "served", "retries", "pauses", "stw_ms", "blamed_gc_ms", "queue_ms", "mean_e2e_ms")
	for _, c := range span.CorrelateReplicas(ft) {
		t.AddRowf(c.Index, c.Routes, c.Requests, c.Retries, c.Pauses,
			float64(c.PauseNS)/1e6, float64(c.BlamedGCNS)/1e6,
			float64(c.QueueNS)/1e6, c.MeanE2ENS/1e6)
	}
	t.Render(os.Stdout)

	if len(ft.Retries) > 0 {
		st := span.SummarizeRetries(ft)
		fmt.Printf("\nretry forensics: %d retries across %d request(s), max depth %d; worst window [%.0fms, %.0fms) saw %d\n",
			st.Total, st.Unique, st.MaxDepth,
			float64(st.PeakWindowStart)/1e6, float64(st.PeakWindowStart+st.WindowNS)/1e6, st.PeakCount)
	}
}

func sortedPhaseKeys(m map[phaseKey]*phaseAgg) []phaseKey {
	out := make([]phaseKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].collector != out[j].collector {
			return out[i].collector < out[j].collector
		}
		return out[i].phase < out[j].phase
	})
	return out
}

func sortedKeys(m map[string]*collectorAgg) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsreport: %v\n", err)
		os.Exit(1)
	}
}
