// Command pca reproduces Figure 4: it characterizes every workload across
// the nominal statistics, runs principal components analysis over the
// metrics for which all benchmarks have values, and renders the PC1/PC2 and
// PC3/PC4 scatter plots that demonstrate the suite's diversity.
//
// Usage:
//
//	pca                     # whole suite (takes a few minutes)
//	pca -events 200 -quick  # faster, lower-fidelity characterization
//	pca -loadings           # also print the most determinant metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"chopin/internal/exper"
	"chopin/internal/figures"
	"chopin/internal/nominal"
	"chopin/internal/report"
	"chopin/internal/workload"
)

func main() {
	var (
		events   = flag.Int("events", 0, "events per characterization run (0 = default)")
		quick    = flag.Bool("quick", false, "skip the expensive size-variant min-heap searches")
		loadings = flag.Bool("loadings", false, "print the most determinant metrics (Table 2 selection)")
		seed     = flag.Uint64("seed", 42, "deterministic seed")
	)
	var cli exper.CLI
	cli.RegisterFlags(flag.CommandLine, "")
	flag.Parse()

	eng, err := cli.Build(os.Stderr, "pca: ")
	check(err)
	defer cli.CloseOrWarn(os.Stderr, "pca: ")

	opt := nominal.Options{Events: *events, Seed: *seed, SkipSizeVariants: *quick, Run: eng.Run}
	var chars []*nominal.Characterization
	for _, d := range workload.All() {
		fmt.Fprintf(os.Stderr, "pca: characterizing %s\n", d.Name)
		c, err := nominal.Characterize(d, opt)
		check(err)
		chars = append(chars, c)
	}
	table := nominal.BuildSuite(chars)

	out, err := figures.PCAFigure(table)
	check(err)
	fmt.Print(out)

	if *loadings {
		names, err := table.MostDeterminant(12, 4)
		check(err)
		t := report.NewTable("rank", "metric", "description")
		for i, n := range names {
			m, _ := nominal.MetricByName(n)
			t.AddRowf(i+1, n, m.Description)
		}
		fmt.Println("most determinant nominal statistics (PCA loadings, top 4 PCs):")
		fmt.Print(t.String())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "pca: %v\n", err)
		os.Exit(1)
	}
}
