// Command fleet runs the fleet-scale serving simulation: N replicas of one
// workload — each a complete simulated JVM with its own heap, collector and
// JIT warmup — behind a load balancer, fed by a configurable arrival process
// on one deterministic virtual clock. It sweeps the
// (replicas × policy × collector × rate) grid through the experiment engine,
// so cells run in parallel, cache persistently and resume after interruption,
// and reports fleet SLO metrics: tail latency quantiles, the SLA ladder,
// per-configuration critical rates, retry storms and host CPU pressure.
//
// Usage:
//
//	fleet -bench cassandra                           # 3 replicas, every policy
//	fleet -bench kafka -replicas 1,3,6 -lb gc-aware
//	fleet -bench h2 -arrival pareto -retry-after 50
//	fleet -bench lusearch -rates 0.8,1,1.5,2 -collectors g1,z -json
//	fleet -bench cassandra -telemetry fleet.jsonl      # request traces for obsreport -fleet
//	fleet -bench kafka -timeline -trace-out fleet.trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"chopin/internal/exper"
	"chopin/internal/fleet"
	"chopin/internal/gc"
	"chopin/internal/obs"
	"chopin/internal/obs/span"
	"chopin/internal/obs/traceview"
	"chopin/internal/report"
	"chopin/internal/workload"
)

func main() {
	var (
		benchName  = flag.String("bench", "cassandra", "workload to replicate across the fleet")
		replicas   = flag.String("replicas", "3", "comma-separated fleet sizes")
		lbs        = flag.String("lb", "", "comma-separated balancer policies (default: all three)")
		gcsFlag    = flag.String("collectors", "", "comma-separated collectors (default: the config default)")
		rates      = flag.String("rates", "1", "comma-separated open-loop headroom factors (2 = half the nominal rate)")
		arrival    = flag.String("arrival", "constant", "arrival process: constant, poisson, pareto, diurnal or ramp")
		alpha      = flag.Float64("alpha", 0, "pareto tail index (0 = default 1.5)")
		amplitude  = flag.Float64("amplitude", 0, "diurnal modulation depth in [0,1) (0 = default 0.5)")
		rampTo     = flag.Float64("ramp-to", 0, "ramp terminal rate multiplier (0 = default 2)")
		events     = flag.Int("events", 0, "events per replica iteration (0 = workload default)")
		iterations = flag.Int("iterations", 1, "warmup+measure iterations per replica")
		heapFactor = flag.Float64("heap", 2.0, "heap size as a multiple of the workload's minimum")
		seed       = flag.Uint64("seed", 42, "deterministic fleet seed")
		retryMS    = flag.Float64("retry-after", 0, "client timeout in milliseconds; timed-out requests retry (0 disables)")
		maxRetries = flag.Int("max-retries", 0, "retry cap per request (0 = default 3)")
		hostCores  = flag.Int("host-cores", 0, "co-located host core budget (0 = fully provisioned)")
		jsonOut    = flag.Bool("json", false, "emit the raw sweep result as JSON")

		traceOut      = flag.String("trace-out", "", "write per-cell fleet timelines (one track per replica: STW, load, requests) as Chrome trace-event JSON to this file")
		timeline      = flag.Bool("timeline", false, "render a terminal fleet timeline per executed cell")
		timelineWidth = flag.Int("timeline-width", 72, "timeline bar width in cells")
	)
	var cli exper.CLI
	cli.RegisterFlags(flag.CommandLine, "")
	flag.Parse()

	// Fleet rendering needs the cells' telemetry in memory; cached cells
	// record nothing, so renders cover executed cells only (-cold re-runs).
	var capture *obs.Buffer
	if *traceOut != "" || *timeline {
		capture = &obs.Buffer{}
		cli.Extra = capture
	}

	// The micro family is reachable too: a fleet of micro-pauseprobe replicas
	// is the fast smoke configuration CI uses.
	d, err := workload.ByName(*benchName)
	if err != nil {
		if md, merr := workload.MicroByName(*benchName); merr == nil {
			d, err = md, nil
		}
	}
	check(err)

	sw := fleet.Sweep{Base: fleet.Config{
		RetryAfterNS: *retryMS * 1e6,
		MaxRetries:   *maxRetries,
		HostCores:    *hostCores,
	}}
	sw.Base.Run.Collector = gc.G1 // serving baseline when -collectors is empty
	sw.Base.Run.HeapMB = *heapFactor * d.MinHeapMB
	sw.Base.Run.Events = *events
	sw.Base.Run.Iterations = *iterations
	sw.Base.Run.Seed = *seed

	kind, err := fleet.ParseArrival(*arrival)
	check(err)
	sw.Base.Arrival = fleet.ArrivalSpec{
		Kind: kind, Alpha: *alpha, Amplitude: *amplitude, RampTo: *rampTo,
	}

	sw.Replicas, err = parseInts(*replicas)
	check(err)
	sw.Policies, err = parsePolicies(*lbs)
	check(err)
	sw.Collectors, err = exper.ParseCollectors(*gcsFlag)
	check(err)
	sw.Rates, err = exper.ParseFactors(*rates)
	check(err)

	eng, err := cli.Build(os.Stderr, "fleet: ")
	check(err)
	defer cli.CloseOrWarn(os.Stderr, "fleet: ")

	res, err := fleet.RunSweep(eng, d, sw)
	check(err)
	fmt.Fprintf(os.Stderr, "fleet: %s\n", exper.Summary(eng.Stats()))

	if capture != nil {
		fts := span.BuildFleet(capture.Events())
		if len(fts) == 0 {
			fmt.Fprintln(os.Stderr, "fleet: no fleet telemetry captured (cached cells record nothing; re-run with -cold)")
		}
		if *traceOut != "" && len(fts) > 0 {
			f, err := os.Create(*traceOut)
			check(err)
			check(traceview.WriteFleetChrome(f, fts))
			check(f.Close())
			fmt.Fprintf(os.Stderr, "fleet: wrote %d cell timeline(s) to %s (load in Perfetto or chrome://tracing)\n",
				len(fts), *traceOut)
		}
		if *timeline && len(fts) > 0 {
			check(traceview.WriteFleetTimeline(os.Stdout, fts, *timelineWidth))
			fmt.Println()
		}
	}

	if *jsonOut {
		data, err := json.MarshalIndent(res, "", "  ")
		check(err)
		fmt.Println(string(data))
		return
	}
	render(res)
}

// parsePolicies resolves the -lb list; empty means all three policies.
func parsePolicies(s string) ([]fleet.Policy, error) {
	if s == "" {
		return []fleet.Policy{fleet.RoundRobin, fleet.LeastOutstanding, fleet.GCAware}, nil
	}
	var out []fleet.Policy
	for _, part := range strings.Split(s, ",") {
		p, err := fleet.ParsePolicy(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad replica count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// render prints the sweep as two tables: every cell's SLO metrics, then the
// per-configuration critical rates.
func render(res *fleet.Result) {
	fmt.Printf("fleet sweep: %s\n\n", res.Workload)
	cells := report.NewTable("n", "policy", "gc", "rate", "req/s",
		"p50 ms", "p99 ms", "p99.9 ms", "SLA", "retry%", "hostCPU")
	for _, c := range res.Cells {
		if c.OOM {
			cells.AddRowf(c.Replicas, string(c.Policy), c.Collector.String(),
				c.Rate, "OOM", "-", "-", "-", "-", "-", "-")
			continue
		}
		r := c.Report
		sla := "miss"
		if r.MeetsAll() {
			sla = "meet"
		}
		storm := fmt.Sprintf("%.1f", 100*r.RetryRate)
		if r.RetryStorm {
			storm += "!"
		}
		host := fmt.Sprintf("%.2f", r.HostCPU)
		if r.HostSaturated {
			host += "!"
		}
		cells.AddRowf(c.Replicas, string(c.Policy), c.Collector.String(), c.Rate,
			fmt.Sprintf("%.0f", r.OfferedRate),
			fmt.Sprintf("%.2f", r.P50NS/1e6),
			fmt.Sprintf("%.2f", r.P99NS/1e6),
			fmt.Sprintf("%.2f", r.P999NS/1e6),
			sla, storm, host)
	}
	cells.Render(os.Stdout)

	fmt.Println("\ncritical rates (highest swept rate meeting every SLA rung):")
	crit := report.NewTable("n", "policy", "gc", "req/s", "headroom")
	for _, cr := range res.Critical {
		rate := "none"
		if cr.RatePerSec > 0 {
			rate = fmt.Sprintf("%.0f", cr.RatePerSec)
		}
		crit.AddRowf(cr.Replicas, string(cr.Policy), cr.Collector.String(),
			rate, cr.Headroom)
	}
	crit.Render(os.Stdout)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		os.Exit(1)
	}
}
