// Command benchdiff is the statistical perf-regression gate: it compares
// two benchmark result files and exits non-zero when the new side is
// significantly worse — slower (ns/op) or allocating more (B/op,
// allocs/op, compared whenever both sides carry the -benchmem columns).
//
// Each input is either a BENCH_sim.json-style map (cmd/benchjson output) or
// raw `go test -bench` text; `-count=N` text carries N samples per
// benchmark, enabling the Mann-Whitney significance test. With fewer than
// three samples per side the relative-threshold rule alone decides; a
// metric whose old median is exactly zero regresses on any nonzero new
// value (0 allocs/op is a contract, not a baseline).
//
// Usage:
//
//	go test -run='^$' -bench=. -count=5 ./internal/sim > new.txt
//	benchdiff BENCH_sim.json new.txt
//	benchdiff -threshold 0.10 -alpha 0.01 old.txt new.txt
//
// Exit status: 0 when no benchmark regressed, 1 on any significant
// regression, 2 on usage or parse errors. `make bench-gate` wires this
// against the checked-in BENCH_sim.json baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"chopin/internal/obs/benchdiff"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.05, "minimum |delta| of the median to flag, as a fraction")
		alpha     = flag.Float64("alpha", 0.05, "Mann-Whitney significance level (needs >=3 samples per side)")
		iters     = flag.Int("bootstrap", 1000, "bootstrap iterations for the median CI")
		seed      = flag.Uint64("seed", 1, "bootstrap RNG seed")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] OLD NEW\n\n")
		fmt.Fprintf(os.Stderr, "OLD and NEW are BENCH_sim.json-style maps or `go test -bench` output.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := benchdiff.ParseFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := benchdiff.ParseFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	rep := benchdiff.Compare(old, cur, benchdiff.Options{
		Threshold:      *threshold,
		Alpha:          *alpha,
		BootstrapIters: *iters,
		Seed:           *seed,
	})
	fmt.Printf("benchdiff: %s vs %s (threshold %.0f%%, alpha %.2f)\n\n",
		flag.Arg(0), flag.Arg(1), *threshold*100, *alpha)
	rep.Render(os.Stdout)
	if rep.Regressions > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}
