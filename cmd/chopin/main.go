// Command chopin is the DaCapo-style benchmark runner: it executes one
// benchmark of the suite under a chosen collector, heap size and compiler
// configuration, and prints per-iteration timings, GC telemetry, latency
// percentiles for latency-sensitive workloads, and (with -p) the workload's
// nominal statistics.
//
// Usage:
//
//	chopin -bench lusearch -n 5 -gc G1 -heap 2x
//	chopin -bench h2 -gc ZGC -heap 1024 -events 2000
//	chopin -bench cassandra -minheap
//	chopin -bench jython -warmup
//	chopin -bench h2o -heaptrace
//	chopin -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"chopin/internal/exper"
	"chopin/internal/figures"
	"chopin/internal/gc"
	"chopin/internal/gclog"
	"chopin/internal/harness"
	"chopin/internal/jit"
	"chopin/internal/latency"
	"chopin/internal/nominal"
	"chopin/internal/report"
	"chopin/internal/trace"
	"chopin/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark to run (see -list)")
		list      = flag.Bool("list", false, "list the suite's benchmarks")
		n         = flag.Int("n", 5, "iterations; the last is timed")
		gcName    = flag.String("gc", "G1", "collector: Serial, Parallel, G1, Shenandoah, ZGC, GenZGC")
		heapSpec  = flag.String("heap", "2x", "heap size: '<mb>' or '<factor>x' of the measured minimum")
		events    = flag.Int("events", 0, "events per iteration (0 = workload default)")
		seed      = flag.Uint64("seed", 42, "deterministic seed")
		compiler  = flag.String("compiler", "tiered", "tiered, interpreter, forced-c2, worst-tier")
		size      = flag.String("size", "default", "input size: small, default, large, vlarge")
		shenMode  = flag.String("shenandoah-heuristic", "adaptive", "Shenandoah heuristic: adaptive, static, compact, aggressive")
		noCoops   = flag.Bool("no-compressed-oops", false, "disable compressed object pointers")
		minheap   = flag.Bool("minheap", false, "report the measured minimum heap and exit")
		printStat = flag.Bool("p", false, "print nominal statistics (quick characterization)")
		warmup    = flag.Bool("warmup", false, "print the warmup curve over -n iterations")
		heaptrace = flag.Bool("heaptrace", false, "print post-GC heap sizes over the timed iteration")
		printLog  = flag.Bool("gclog", false, "print the run's GC log in OpenJDK unified-logging style")
	)
	var cli exper.CLI
	cli.RegisterFlags(flag.CommandLine, "")
	flag.Parse()

	if *list {
		t := report.NewTable("benchmark", "class", "latency", "new", "threads", "minheap(MB)", "description")
		for _, d := range workload.All() {
			t.AddRowf(d.Name, d.Class.String(), d.LatencySensitive, d.NewInChopin,
				d.Threads, d.MinHeapMB, d.Description)
		}
		fmt.Print(t.String())
		return
	}
	if *benchName == "" {
		fail("missing -bench (or -list)")
	}
	d, err := workload.ByName(*benchName)
	if err != nil {
		fail("%v", err)
	}
	sz, err := workload.ParseSize(*size)
	if err != nil {
		fail("%v", err)
	}
	d = d.Scaled(sz)
	kind, err := gc.ParseKind(*gcName)
	if err != nil {
		fail("%v", err)
	}
	var paramsOverride *gc.Params
	if kind == gc.Shenandoah && *shenMode != "adaptive" {
		mode, err := gc.ParseShenandoahMode(*shenMode)
		if err != nil {
			fail("%v", err)
		}
		p := gc.ShenandoahParams(mode, 16)
		paramsOverride = &p
	}
	jc, err := parseCompiler(*compiler)
	if err != nil {
		fail("%v", err)
	}

	eng, err := cli.Build(os.Stderr, "chopin: ")
	check(err)
	defer cli.CloseOrWarn(os.Stderr, "chopin: ")
	opt := harness.Options{Events: *events, Seed: *seed, Engine: eng}

	if *printStat {
		c, err := nominal.Characterize(d, nominal.Options{
			Events: *events, Seed: *seed, SkipSizeVariants: true, Run: eng.Run,
		})
		check(err)
		table := nominal.BuildSuite([]*nominal.Characterization{c})
		out, err := figures.BenchmarkTable(table, d.Name)
		check(err)
		fmt.Printf("%s: %s\n(ranks/scores are against this benchmark alone; use cmd/nominal for suite-wide ranking)\n\n%s",
			d.Name, d.Description, out)
		return
	}
	if *minheap {
		min, err := harness.MinHeapMB(d, opt)
		check(err)
		fmt.Printf("%s minimum heap (G1, default size): %.1f MB\n", d.Name, min)
		return
	}
	if *heaptrace {
		samples, err := harness.HeapTimeline(d, opt)
		check(err)
		fmt.Print(figures.HeapTimelineFigure(d.Name, samples))
		return
	}

	heapMB, err := resolveHeap(d, *heapSpec, opt)
	check(err)
	cfg := workload.RunConfig{
		HeapMB:                heapMB,
		Collector:             kind,
		CollectorParams:       paramsOverride,
		Compiler:              jc,
		Iterations:            *n,
		Events:                *events,
		Seed:                  *seed,
		DisableCompressedOops: *noCoops,
	}
	res, err := eng.Run(d, cfg)
	check(err)

	fmt.Printf("===== chopin %s: %s, %.0fMB heap, %d iterations =====\n",
		d.Name, kind, heapMB, *n)
	t := report.NewTable("iteration", "wall (ms)", "task clock (ms)", "alloc (MB)")
	for i, it := range res.Iterations {
		label := fmt.Sprintf("%d", i+1)
		if i == len(res.Iterations)-1 {
			label += " (timed)"
		}
		t.AddRowf(label, it.WallNS/1e6, it.CPUNS/1e6, it.Allocated/workload.MB)
	}
	fmt.Print(t.String())
	if *warmup {
		fmt.Println("\nwarmup: iteration wall times relative to best")
		best := res.Iterations[0].WallNS
		for _, it := range res.Iterations {
			if it.WallNS < best {
				best = it.WallNS
			}
		}
		for i, it := range res.Iterations {
			fmt.Printf("  iter %2d: %.3fx\n", i+1, it.WallNS/best)
		}
	}

	if *printLog {
		fmt.Println()
		fmt.Print(gclog.Format(res.Log, heapMB))
	}

	fmt.Printf("\nGC: %d young, %d full, %d concurrent, %d mixed, %d degenerate\n",
		res.Log.Count(trace.GCYoung), res.Log.Count(trace.GCFull),
		res.Log.Count(trace.GCConcurrent), res.Log.Count(trace.GCMixed),
		res.Log.Count(trace.GCDegenerate))
	fmt.Printf("GC: %.1fms total STW over %d pauses (max %.2fms), %.1fms GC CPU, %.1fms alloc stalls\n",
		res.Log.TotalPauseNS()/1e6, len(res.Log.Pauses), res.Log.MaxPauseNS()/1e6,
		res.GCCPUNS/1e6, res.Log.StallNS/1e6)

	if len(res.Events) > 0 {
		evs := make([]latency.Event, len(res.Events))
		for i, e := range res.Events {
			evs[i] = latency.Event{Start: e.Start, End: e.End}
		}
		fmt.Printf("\nlatency over %d events (ms):\n", len(evs))
		lt := report.NewTable("view", "p50", "p90", "p99", "p99.9", "max")
		for _, v := range []struct {
			name string
			vals []float64
		}{
			{"simple", latency.Simple(evs)},
			{"metered (100ms)", latency.Metered(evs, 100e6)},
			{"metered (full)", latency.Metered(evs, latency.FullSmoothing)},
		} {
			dist := latency.NewDistribution(v.vals)
			lt.AddRowf(v.name, dist.Percentile(50)/1e6, dist.Percentile(90)/1e6,
				dist.Percentile(99)/1e6, dist.Percentile(99.9)/1e6, dist.Max()/1e6)
		}
		fmt.Print(lt.String())
	}
}

// resolveHeap parses "<mb>" or "<factor>x"; factors are multiples of the
// measured minimum heap per Recommendation H2.
func resolveHeap(d *workload.Descriptor, spec string, opt harness.Options) (float64, error) {
	if strings.HasSuffix(spec, "x") {
		f, err := strconv.ParseFloat(strings.TrimSuffix(spec, "x"), 64)
		if err != nil {
			return 0, fmt.Errorf("bad heap factor %q", spec)
		}
		min, err := harness.MinHeapMB(d, opt)
		if err != nil {
			return 0, err
		}
		return min * f, nil
	}
	mb, err := strconv.ParseFloat(spec, 64)
	if err != nil {
		return 0, fmt.Errorf("bad heap size %q (want '<mb>' or '<factor>x')", spec)
	}
	return mb, nil
}

func parseCompiler(s string) (jit.Config, error) {
	switch s {
	case "tiered":
		return jit.Tiered, nil
	case "interpreter":
		return jit.InterpreterOnly, nil
	case "forced-c2":
		return jit.ForcedC2, nil
	case "worst-tier":
		return jit.WorstTier, nil
	}
	return 0, fmt.Errorf("unknown compiler config %q", s)
}

func check(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "chopin: "+format+"\n", args...)
	os.Exit(1)
}
