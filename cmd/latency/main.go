// Command latency reproduces the paper's user-experienced latency
// experiments: Figure 3 (cassandra), Figure 6 (h2) and the appendix latency
// figures, reporting simple latency and metered latency (100ms and full
// smoothing) percentile distributions for each collector at 2x and 6x heaps,
// plus MMU curves and the pause-vs-latency contrast behind Recommendation L1.
//
// Usage:
//
//	latency -bench cassandra             # Figure 3
//	latency -bench h2                    # Figure 6
//	latency -bench kafka -factors 2,4,6
//	latency -bench lusearch -mmu
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"chopin/internal/exper"
	"chopin/internal/figures"
	"chopin/internal/harness"
	"chopin/internal/workload"
)

func main() {
	var (
		benchName   = flag.String("bench", "cassandra", "latency-sensitive benchmark")
		factorsFlag = flag.String("factors", "2,6", "comma-separated heap factors")
		gcsFlag     = flag.String("collectors", "", "comma-separated collectors (default: the paper's five)")
		events      = flag.Int("events", 0, "events per iteration (0 = workload default)")
		iterations  = flag.Int("iterations", 3, "iterations; the last is measured")
		seed        = flag.Uint64("seed", 42, "deterministic seed")
		mmu         = flag.Bool("mmu", false, "also print minimum mutator utilization curves")
		jops        = flag.Bool("jops", false, "also print SPECjbb-style critical-jOPS scores")
		openLoop    = flag.Bool("open", false, "open-loop mode: scheduled arrivals with queueing (latency from arrival)")
		headroom    = flag.Float64("headroom", 2.0, "open-loop arrival-interval stretch (2.0 = half the nominal rate)")
		csvDir      = flag.String("csv", "", "directory for raw per-event latency CSVs (as the DaCapo -latency-csv option)")
	)
	var cli exper.CLI
	cli.RegisterFlags(flag.CommandLine, "")
	flag.Parse()

	d, err := workload.ByName(*benchName)
	check(err)
	if !d.LatencySensitive {
		fmt.Fprintf(os.Stderr, "latency: note: %s is not one of the nine latency-sensitive workloads; timing events anyway\n", d.Name)
	}

	eng, err := cli.Build(os.Stderr, "latency: ")
	check(err)
	defer cli.CloseOrWarn(os.Stderr, "latency: ")

	factors, err := exper.ParseFactors(*factorsFlag)
	check(err)
	opt := harness.Options{
		Events:     *events,
		Iterations: *iterations,
		Seed:       *seed,
		Engine:     eng,
	}
	opt.Collectors, err = exper.ParseCollectors(*gcsFlag)
	check(err)
	if opt.Events == 0 {
		// Latency distributions need tail resolution: use the workload's
		// full default event count rather than the sweep-scaled quarter.
		opt.Events = d.Events
	}

	fmt.Fprintf(os.Stderr, "latency: running %s at %v x minheap\n", d.Name, factors)
	// The sweep is one job DAG: the min-heap anchor and, as soon as it
	// resolves, every (collector, factor) cell as one batch.
	var pending *harness.PendingLatency
	if *openLoop {
		pending = harness.SubmitLatencyOpenLoop(d, factors, *headroom, opt)
	} else {
		pending = harness.SubmitLatency(d, factors, opt)
	}
	results, err := pending.Wait()
	check(err)

	if *csvDir != "" {
		check(os.MkdirAll(*csvDir, 0o755))
		for _, r := range results {
			if !r.Completed {
				continue
			}
			name := fmt.Sprintf("%s_%s_%gx.csv", d.Name, r.Collector, r.HeapFactor)
			f, err := os.Create(filepath.Join(*csvDir, name))
			check(err)
			fmt.Fprintln(f, "start_ns,end_ns,simple_latency_ns")
			for _, e := range r.Events {
				fmt.Fprintf(f, "%d,%d,%d\n", e.Start, e.End, e.End-e.Start)
			}
			check(f.Close())
		}
		fmt.Fprintf(os.Stderr, "latency: raw CSVs written to %s\n", *csvDir)
	}

	fmt.Print(figures.LatencyFigure(results))
	fmt.Println("GC pauses versus user-experienced latency (Recommendation L1):")
	fmt.Print(figures.PauseSummary(results))
	if *mmu {
		fmt.Println("\nminimum mutator utilization (Figure 2 methodology):")
		fmt.Print(figures.MMUFigure(results))
	}
	if *jops {
		fmt.Println("\ncritical-jOPS under the SPECjbb2015 SLA ladder:")
		fmt.Print(figures.CriticalJOPSTable(results))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "latency: %v\n", err)
		os.Exit(1)
	}
}
