// Command runbms is the experiment runner (the running-ng analogue from the
// paper's artifact): it executes a JSON experiment plan — suites of LBO
// sweeps, latency experiments and heap traces — and writes rendered figures
// and CSV data into a results directory.
//
// Usage:
//
//	runbms -plan experiments/lbo.json -out results/
//	runbms -plan experiments/kick-the-tires.json -out results/
//	runbms -plan experiments/lbo.json -out results/ -progress   # per-job events
//	runbms -plan experiments/lbo.json -out results/ -cold       # ignore cached results
//
// Completed invocations persist in a content-addressed cache (default
// <out>/cache), so re-running a plan — after an interrupt, a crash, or an
// edit that adds experiments — re-executes only what is missing.
//
// A plan looks like:
//
//	{
//	  "experiments": [
//	    {"name": "lbo", "type": "lbo", "benchmarks": ["cassandra","lusearch"],
//	     "heap_factors": [1,2,3,4,5,6], "invocations": 3},
//	    {"name": "latency", "type": "latency", "benchmarks": ["cassandra"],
//	     "heap_factors": [2,6]},
//	    {"name": "heap", "type": "heaptrace", "benchmarks": ["h2o"]}
//	  ]
//	}
//
// Omitting "benchmarks" selects the whole suite; omitting collectors or
// factors selects the paper's defaults.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"chopin/internal/exper"
	"chopin/internal/figures"
	"chopin/internal/gc"
	"chopin/internal/harness"
	"chopin/internal/nominal"
	"chopin/internal/workload"
)

// Plan is the top-level experiment file.
type Plan struct {
	Experiments []Experiment `json:"experiments"`
}

// Experiment is one entry of a plan.
type Experiment struct {
	Name        string    `json:"name"`
	Type        string    `json:"type"` // lbo | latency | heaptrace | pca | nominal
	Benchmarks  []string  `json:"benchmarks"`
	Collectors  []string  `json:"collectors"`
	HeapFactors []float64 `json:"heap_factors"`
	Invocations int       `json:"invocations"`
	Iterations  int       `json:"iterations"`
	Events      int       `json:"events"`
	Seed        uint64    `json:"seed"`
}

func main() {
	var (
		planPath = flag.String("plan", "", "experiment plan (JSON)")
		outDir   = flag.String("out", "results", "output directory")
	)
	var cli exper.CLI
	cli.RegisterFlags(flag.CommandLine, "")
	flag.Parse()
	if *planPath == "" {
		fail("missing -plan")
	}
	raw, err := os.ReadFile(*planPath)
	check(err)
	var plan Plan
	check(json.Unmarshal(raw, &plan))
	check(os.MkdirAll(*outDir, 0o755))

	// Results cache under the output directory by default, so a re-run of
	// the same plan — after a crash, an interrupt, or a plan edit — skips
	// everything already computed.
	if cli.CacheDir == "" {
		cli.CacheDir = filepath.Join(*outDir, "cache")
	}
	eng, err := cli.Build(os.Stderr, "runbms: ")
	check(err)
	defer cli.CloseOrWarn(os.Stderr, "runbms: ")

	// One engine for the whole plan: a single work-stealing pool bounds
	// parallelism across experiments, and min-heap measurements shared by
	// several experiments run once. The entire plan is submitted as one
	// batch of jobs before anything is collected, so the pool sees every
	// experiment at once and host cores stay saturated from the first
	// min-heap probe to the last sweep cell; results are then collected and
	// rendered in plan order, so output is deterministic whatever the
	// execution interleaving.
	collects := make([]func() error, len(plan.Experiments))
	for i, exp := range plan.Experiments {
		fmt.Fprintf(os.Stderr, "runbms: submitting experiment %q (%s)\n", exp.Name, exp.Type)
		collect, err := submit(eng, exp, *outDir)
		check(err)
		collects[i] = collect
	}
	for i, exp := range plan.Experiments {
		check(collects[i]())
		fmt.Fprintf(os.Stderr, "runbms: experiment %q done\n", exp.Name)
	}
	fmt.Fprintf(os.Stderr, "runbms: %s\n", exper.Summary(eng.Stats()))
	fmt.Fprintf(os.Stderr, "runbms: results in %s\n", *outDir)
}

// submit registers one experiment's jobs with the engine and returns a
// collect function that waits for them and renders the experiment's output.
// All submission happens before submit returns, so calling it for every
// experiment of a plan builds the plan's whole job DAG up front.
func submit(eng *exper.Engine, exp Experiment, outDir string) (func() error, error) {
	ds, err := benchmarks(exp.Benchmarks)
	if err != nil {
		return nil, err
	}
	opt := harness.Options{
		HeapFactors: exp.HeapFactors,
		Invocations: exp.Invocations,
		Iterations:  exp.Iterations,
		Events:      exp.Events,
		Seed:        exp.Seed,
		Engine:      eng,
	}
	for _, name := range exp.Collectors {
		k, err := gc.ParseKind(name)
		if err != nil {
			return nil, err
		}
		opt.Collectors = append(opt.Collectors, k)
	}

	switch exp.Type {
	case "lbo":
		suite := harness.SubmitSuiteLBO(ds, opt)
		return func() error {
			grids, pts, err := suite.Wait()
			if err != nil {
				return err
			}
			var names []string
			for _, k := range optCollectors(opt) {
				names = append(names, k.String())
			}
			if err := writeFile(outDir, exp.Name+"_geomean.txt",
				figures.GeomeanFigure(pts, names)); err != nil {
				return err
			}
			for _, g := range grids {
				min := 0.0
				for _, c := range g.Cells {
					if c.HeapFactor == 1 || min == 0 {
						min = c.HeapMB / c.HeapFactor
					}
				}
				out, err := figures.LBOFigure(g, min)
				if err != nil {
					return err
				}
				if err := writeFile(outDir, exp.Name+"_"+g.Benchmark+".txt", out); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case "latency":
		pending := make([]*harness.PendingLatency, len(ds))
		for i, d := range ds {
			pending[i] = harness.SubmitLatency(d, exp.HeapFactors, opt)
		}
		return func() error {
			for i, d := range ds {
				results, err := pending[i].Wait()
				if err != nil {
					return err
				}
				body := figures.LatencyFigure(results) + "\n" +
					figures.PauseSummary(results) + "\n" + figures.MMUFigure(results)
				if err := writeFile(outDir, exp.Name+"_"+d.Name+".txt", body); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case "heaptrace":
		// HeapTimeline is a two-job chain (min-heap anchor, one trace run);
		// one orchestration goroutine per benchmark submits them all now.
		samples := make([][]harness.HeapSample, len(ds))
		errs := make([]error, len(ds))
		var wg sync.WaitGroup
		for i, d := range ds {
			wg.Add(1)
			go func(i int, d *workload.Descriptor) {
				defer wg.Done()
				samples[i], errs[i] = harness.HeapTimeline(d, opt)
			}(i, d)
		}
		return func() error {
			wg.Wait()
			for i, d := range ds {
				if errs[i] != nil {
					return errs[i]
				}
				if err := writeFile(outDir, exp.Name+"_"+d.Name+".txt",
					figures.HeapTimelineFigure(d.Name, samples[i])); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case "pca", "nominal":
		// Characterizations are independent per benchmark: run them all
		// concurrently over the shared engine (each one's probes are engine
		// jobs), collect in suite order.
		chars := make([]*nominal.Characterization, len(ds))
		errs := make([]error, len(ds))
		var wg sync.WaitGroup
		for i, d := range ds {
			wg.Add(1)
			go func(i int, d *workload.Descriptor) {
				defer wg.Done()
				chars[i], errs[i] = nominal.Characterize(d, nominal.Options{
					Events: exp.Events, Seed: exp.Seed, SkipSizeVariants: true, Run: eng.Run,
				})
			}(i, d)
		}
		return func() error {
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			table := nominal.BuildSuite(chars)
			if exp.Type == "pca" {
				out, err := figures.PCAFigure(table)
				if err != nil {
					return err
				}
				return writeFile(outDir, exp.Name+"_pca.txt", out)
			}
			if err := writeFile(outDir, exp.Name+"_table2.txt", figures.Table2(table)); err != nil {
				return err
			}
			for _, d := range ds {
				out, err := figures.BenchmarkTable(table, d.Name)
				if err != nil {
					return err
				}
				if err := writeFile(outDir, exp.Name+"_"+d.Name+".txt", out); err != nil {
					return err
				}
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("unknown experiment type %q", exp.Type)
}

func optCollectors(opt harness.Options) []gc.Kind {
	if opt.Collectors != nil {
		return opt.Collectors
	}
	return gc.Kinds
}

func benchmarks(names []string) ([]*workload.Descriptor, error) {
	if len(names) == 0 {
		return workload.All(), nil
	}
	var ds []*workload.Descriptor
	for _, n := range names {
		d, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		ds = append(ds, d)
	}
	return ds, nil
}

func writeFile(dir, name, body string) error {
	return os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644)
}

func check(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "runbms: "+format+"\n", args...)
	os.Exit(1)
}
