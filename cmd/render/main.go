// Command render re-renders figures from archived JSON results (written by
// `lbo -json`), so expensive sweeps need not be re-run to regenerate their
// figures — the offline half of the experiment workflow.
//
// Usage:
//
//	render -in results/figure1_geomean.json
//	render -in results/lbo_cassandra.json
package main

import (
	"flag"
	"fmt"
	"os"

	"chopin/internal/figures"
	"chopin/internal/gc"
	"chopin/internal/persist"
)

func main() {
	in := flag.String("in", "", "JSON archive to render")
	flag.Parse()
	if *in == "" {
		fail("missing -in")
	}
	a, err := persist.Load(*in)
	check(err)
	switch a.Kind {
	case "geomean":
		var names []string
		for _, k := range gc.AllKinds {
			names = append(names, k.String())
		}
		fmt.Print(figures.GeomeanFigure(a.Geomean, names))
	case "lbo-grid":
		// Recover the minimum heap from any factor-1 cell, else the ratio.
		min := 0.0
		for _, c := range a.Grid.Cells {
			if c.HeapFactor > 0 {
				min = c.HeapMB / c.HeapFactor
				break
			}
		}
		out, err := figures.LBOFigure(a.Grid, min)
		check(err)
		fmt.Print(out)
	case "characterization":
		fmt.Printf("%s: measured minimum heap %.1fMB, %d metrics\n",
			a.Characterization.Workload, a.Characterization.MinHeapMB,
			len(a.Characterization.Values))
		for _, name := range []string{"ARA", "GMD", "GSS", "GCP", "PET", "UIP"} {
			fmt.Printf("  %s = %.2f\n", name, a.Characterization.Value(name))
		}
	default:
		fail("cannot render archive kind %q", a.Kind)
	}
}

func check(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "render: "+format+"\n", args...)
	os.Exit(1)
}
