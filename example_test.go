package chopin_test

import (
	"fmt"

	"chopin"
)

// The suite's composition mirrors the paper: 22 workloads, 9 of them
// latency-sensitive, 8 new in the Chopin release.
func ExampleBenchmarks() {
	all := chopin.Benchmarks()
	latency := chopin.LatencyBenchmarks()
	newCount := 0
	for _, b := range all {
		if b.NewInChopin {
			newCount++
		}
	}
	fmt.Println(len(all), len(latency), newCount)
	// Output: 22 9 8
}

func ExampleLookup() {
	b, _ := chopin.Lookup("lusearch")
	fmt.Println(b.Name, b.LatencySensitive, b.MinHeapMB)
	// Output: lusearch true 19
}

func ExampleParseCollector() {
	k, _ := chopin.ParseCollector("Shenandoah")
	fmt.Println(k, k == chopin.Shenandoah)
	// Output: Shenandoah true
}

// Simple latency is end minus actual start; metered latency charges queued
// events from their hypothetical uniform arrival, so it can only be larger.
func ExampleMeteredLatency() {
	events := []chopin.LatencyEvent{
		{Start: 0, End: 5},
		{Start: 10, End: 15},
		{Start: 200, End: 205},
	}
	fmt.Println(chopin.SimpleLatency(events))
	fmt.Println(chopin.MeteredLatency(events, chopin.FullSmoothing))
	// Output:
	// [5 5 5]
	// [5 5 5]
}

// A 10ms pause consumes half of any 20ms window that contains it.
func ExampleMMU() {
	pauses := []chopin.GCPause{{Start: 100e6, End: 110e6}}
	fmt.Println(chopin.MMU(pauses, 0, 1e9, 20e6))
	// Output: 0.5
}

func ExampleNewDistribution() {
	d := chopin.NewDistribution([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	fmt.Println(d.Percentile(0), d.Percentile(50), d.Percentile(100))
	// Output: 1 5.5 10
}

// Input sizes scale a workload's live set; h2's vlarge configuration needs
// roughly 20GB, as in the paper.
func ExampleBenchmark_Scaled() {
	h2, _ := chopin.Lookup("h2")
	vlarge := h2.Scaled(chopin.SizeVLarge)
	fmt.Printf("%.1fGB\n", vlarge.MinHeapMB/1024)
	// Output: 20.0GB
}
